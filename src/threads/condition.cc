#include "src/threads/condition.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/obs/metrics.h"
#include "src/obs/recorder.h"
#include "src/spec/action.h"
#include "src/threads/nub.h"

namespace taos {

Condition::Condition() : id_(Nub::Get().NextObjId()) {}

Condition::~Condition() {
  TAOS_CHECK(queue_.Empty());
  TAOS_CHECK(window_.empty());
  TAOS_CHECK(pending_raise_.empty());
}

void Condition::Wait(Mutex& m) {
  obs::WithEvent(obs::Op::kWait, id_, [&] {
    Nub& nub = Nub::Get();
    ThreadRecord* self = nub.Current();
    // REQUIRES m = SELF.
    TAOS_CHECK(m.holder_.load(std::memory_order_relaxed) == self->id);
    if (nub.tracing()) {
      TracedWait(m, self);
      return;
    }
    // First read c's Eventcount (still inside the critical section)...
    const EventCount::Value i = ec_.Read();
    // ...announce ourselves to Signal's fast path before the critical section
    // ends, so "no waiters" can never be concluded while we are in flight...
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    // ...then leave the critical section and call the Nub subroutine Block.
    m.Release();
    Block(self, i);
    // On return from Block, re-enter a critical section.
    m.Acquire();
  });
}

void Condition::Block(ThreadRecord* self, EventCount::Value i) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(obs::Counter::kNubWait);
  bool parked = false;
  {
    NubGuard g(nub_lock_);
    if (ec_.Read() == i) {
      queue_.PushBack(self);
      MarkBlocked(self, ThreadRecord::BlockKind::kCondition, this, &nub_lock_,
                  /*alertable=*/false);
      parked = true;
    } else {
      // A Signal or Broadcast intervened between the eventcount read and
      // now: return immediately. This is how the wakeup-waiting race is
      // covered, and why one Signal can unblock several threads.
      waiters_.fetch_sub(1, std::memory_order_relaxed);
      absorbed_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(obs::Counter::kWakeupWaitingHits);
    }
  }
  if (parked) {
    ParkBlocked(self);
  }
}

void Condition::Signal() {
  obs::WithEvent(obs::Op::kSignal, id_, [&] {
    Nub& nub = Nub::Get();
    if (nub.tracing()) {
      obs::Inc(obs::Counter::kNubSignal);
      TracedSignal(nub.Current());
      return;
    }
    // User code: avoid calling the Nub if there are no threads to unblock.
    if (waiters_.load(std::memory_order_seq_cst) == 0) {
      fast_signals_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(obs::Counter::kFastSignal);
      return;
    }
    NubSignal();
  });
}

void Condition::NubSignal() {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  nub_signals_.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(obs::Counter::kNubSignal);
  ThreadRecord* wake = nullptr;
  {
    NubGuard g(nub_lock_);
    ec_.Advance();
    wake = queue_.PopFront();
    if (wake != nullptr) {
      waiters_.fetch_sub(1, std::memory_order_relaxed);
      MarkUnblocked(wake);
    }
  }
  if (wake != nullptr) {
    obs::Inc(obs::Counter::kHandoffs);
    wake->park.release();
  }
}

void Condition::Broadcast() {
  obs::WithEvent(obs::Op::kBroadcast, id_, [&] {
    Nub& nub = Nub::Get();
    if (nub.tracing()) {
      obs::Inc(obs::Counter::kNubBroadcast);
      TracedBroadcast(nub.Current());
      return;
    }
    if (waiters_.load(std::memory_order_seq_cst) == 0) {
      fast_signals_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(obs::Counter::kFastBroadcast);
      return;
    }
    NubBroadcast();
  });
}

void Condition::NubBroadcast() {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(obs::Counter::kNubBroadcast);
  std::vector<ThreadRecord*> wake;
  {
    NubGuard g(nub_lock_);
    ec_.Advance();
    while (ThreadRecord* t = queue_.PopFront()) {
      waiters_.fetch_sub(1, std::memory_order_relaxed);
      MarkUnblocked(t);
      wake.push_back(t);
    }
  }
  obs::Add(obs::Counter::kHandoffs, wake.size());
  for (ThreadRecord* t : wake) {
    t->park.release();
  }
}

// ---------------------------------------------------------------------------
// Traced (spec-emitting) paths.
// ---------------------------------------------------------------------------

bool Condition::EraseWindow(ThreadRecord* rec) {
  auto it = std::find(window_.begin(), window_.end(), rec);
  if (it == window_.end()) {
    return false;
  }
  window_.erase(it);
  return true;
}

bool Condition::ErasePendingRaise(ThreadRecord* rec) {
  auto it = std::find(pending_raise_.begin(), pending_raise_.end(), rec);
  if (it == pending_raise_.end()) {
    return false;
  }
  pending_raise_.erase(it);
  return true;
}

void Condition::TracedWait(Mutex& m, ThreadRecord* self) {
  Nub& nub = Nub::Get();
  obs::Inc(obs::Counter::kNubWait);
  EventCount::Value snapshot = 0;
  ThreadRecord* wake = nullptr;
  {
    // Atomic action Enqueue: insert SELF into c and set m to NIL. The action
    // touches both objects, so both ObjLocks are held (NubGuard2 order).
    NubGuard2 g(m.nub_lock_, &nub_lock_);
    snapshot = ec_.Read();
    wake = m.TracedReleaseLocked(self, /*emit_release=*/false);
    window_.push_back(self);
    nub.EmitTraced(spec::MakeEnqueue(self->id, m.id_, id_));
  }
  if (wake != nullptr) {
    obs::Inc(obs::Counter::kHandoffs);
    wake->park.release();
  }

  // Nub subroutine Block(c, i).
  bool parked = false;
  {
    NubGuard g(nub_lock_);
    if (ec_.Read() != snapshot) {
      // Absorbed: the intervening Signal/Broadcast removed us from c (and
      // from window_) when it emitted its action.
      TAOS_DCHECK(std::find(window_.begin(), window_.end(), self) ==
                  window_.end());
      absorbed_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(obs::Counter::kWakeupWaitingHits);
    } else {
      TAOS_CHECK(EraseWindow(self));
      queue_.PushBack(self);
      MarkBlocked(self, ThreadRecord::BlockKind::kCondition, this, &nub_lock_,
                  /*alertable=*/false);
      parked = true;
    }
  }
  if (parked) {
    ParkBlocked(self);
  }

  // Atomic action Resume, emitted at the instant m is regained. Its WHEN
  // clause reads c (SELF NOT-IN c) but the emission holds only m's lock:
  // the Signal/Broadcast/Enqueue actions that changed SELF's membership all
  // happened-before this point, so their stamps precede this one, and no
  // other thread can re-insert SELF.
  m.TracedAcquire(self, spec::MakeResume(self->id, m.id_, id_));
}

void Condition::TracedSignal(ThreadRecord* self) {
  Nub& nub = Nub::Get();
  nub_signals_.fetch_add(1, std::memory_order_relaxed);
  ThreadRecord* wake = nullptr;
  {
    NubGuard g(nub_lock_);
    ec_.Advance();
    spec::ThreadSet removed;
    wake = queue_.PopFront();
    if (wake != nullptr) {
      removed = removed.Insert(wake->id);
      MarkUnblocked(wake);
    }
    // Every thread in the wakeup-waiting window absorbs this increment, so
    // this Signal removes them all from c.
    for (ThreadRecord* r : window_) {
      removed = removed.Insert(r->id);
    }
    window_.clear();
    // Threads committed to raising Alerted are still spec-members of c;
    // removing them here keeps Signal's ENSURES honest (a Signal may be
    // consumed by a thread that then raises — the paper's corrected
    // AlertWait semantics).
    for (ThreadRecord* r : pending_raise_) {
      removed = removed.Insert(r->id);
    }
    pending_raise_.clear();
    nub.EmitTraced(spec::MakeSignal(self->id, id_, removed));
  }
  if (wake != nullptr) {
    obs::Inc(obs::Counter::kHandoffs);
    wake->park.release();
  }
}

void Condition::TracedBroadcast(ThreadRecord* self) {
  Nub& nub = Nub::Get();
  std::vector<ThreadRecord*> wake;
  {
    NubGuard g(nub_lock_);
    ec_.Advance();
    spec::ThreadSet removed;
    while (ThreadRecord* t = queue_.PopFront()) {
      removed = removed.Insert(t->id);
      MarkUnblocked(t);
      wake.push_back(t);
    }
    for (ThreadRecord* r : window_) {
      removed = removed.Insert(r->id);
    }
    window_.clear();
    for (ThreadRecord* r : pending_raise_) {
      removed = removed.Insert(r->id);
    }
    pending_raise_.clear();
    nub.EmitTraced(spec::MakeBroadcast(self->id, id_, removed));
  }
  obs::Add(obs::Counter::kHandoffs, wake.size());
  for (ThreadRecord* t : wake) {
    t->park.release();
  }
}

}  // namespace taos
