#include "src/threads/condition.h"

#include <algorithm>

#include "src/base/chaos.h"
#include "src/base/check.h"
#include "src/obs/metrics.h"
#include "src/obs/recorder.h"
#include "src/spec/action.h"
#include "src/threads/nub.h"
#include "src/threads/timer.h"

namespace taos {

Condition::Condition() : id_(Nub::Get().NextObjId()) {}

Condition::~Condition() {
  TAOS_CHECK(queue_.Empty());
  TAOS_CHECK(wqueue_.DrainedForDebug());
  TAOS_CHECK(window_.empty());
  TAOS_CHECK(pending_raise_.empty());
  TAOS_CHECK(pending_timeout_.empty());
}

void Condition::Wait(Mutex& m) {
  obs::WithEvent(obs::Op::kWait, id_, [&] {
    Nub& nub = Nub::Get();
    ThreadRecord* self = nub.Current();
    // REQUIRES m = SELF.
    TAOS_CHECK(m.holder_.load(std::memory_order_relaxed) == self->id);
    if (nub.tracing()) {
      TracedWait(m, self);
      return;
    }
    // First read c's Eventcount (still inside the critical section)...
    const EventCount::Value i = ec_.Read();
    // ...announce ourselves to Signal's fast path before the critical section
    // ends, so "no waiters" can never be concluded while we are in flight...
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    // ...then leave the critical section and call the Nub subroutine Block.
    m.Release();
    // The wakeup-waiting window: a Signal landing here must not be lost.
    TAOS_CHAOS(kCondReleaseToBlock);
    Block(self, i);
    // On return from Block, re-enter a critical section.
    m.Acquire();
  });
}

WaitResult Condition::WaitFor(Mutex& m, std::chrono::nanoseconds timeout) {
  WaitResult result = WaitResult::kSatisfied;
  obs::WithEvent(obs::Op::kWait, id_, [&] {
    Nub& nub = Nub::Get();
    ThreadRecord* self = nub.Current();
    // REQUIRES m = SELF.
    TAOS_CHECK(m.holder_.load(std::memory_order_relaxed) == self->id);
    if (timeout.count() <= 0) {
      // The deadline has already passed: don't enqueue (and in traced mode
      // don't emit — nothing changed). m stays held throughout.
      result = WaitResult::kTimeout;
      return;
    }
    const std::uint64_t deadline = DeadlineAfter(timeout);
    if (nub.tracing()) {
      result = TracedWaitFor(m, self, deadline);
      return;
    }
    const EventCount::Value i = ec_.Read();
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    m.Release();
    TAOS_CHAOS(kCondReleaseToBlock);
    const bool expired = BlockFor(self, i, deadline);
    m.Acquire();
    result = expired ? WaitResult::kTimeout : WaitResult::kSatisfied;
  });
  obs::Inc(result == WaitResult::kSatisfied
               ? obs::Counter::kTimedWaitSatisfied
               : obs::Counter::kTimedWaitTimeouts);
  return result;
}

void Condition::Block(ThreadRecord* self, EventCount::Value i) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(obs::Counter::kNubWait);
  if (nub.waitq_mode()) {
    // Lock-free Block: claim a cell, then re-read the eventcount. The
    // claim-then-read here against Signal's advance-then-scan is the Dekker
    // pairing that closes the wakeup-waiting race on this backend (both the
    // cell claim and EventCount accesses are seq_cst); a Signal that
    // advanced past i either sees our claim, or we see its advance.
    waitq::WaitCell* cell = wqueue_.Enqueue();
    TAOS_CHAOS(kCondClaimToRecheck);
    if (ec_.Read() != i) {
      // A Signal or Broadcast intervened: withdraw the claim and return. If
      // its resume already landed on the cell, accept the wakeup (the
      // signaller then did the waiters_ decrement).
      if (cell->Cancel() == waitq::WaitCell::CancelOutcome::kCancelled) {
        waiters_.fetch_sub(1, std::memory_order_relaxed);
        absorbed_.fetch_add(1, std::memory_order_relaxed);
        obs::Inc(obs::Counter::kWakeupWaitingHits);
      }
      waitq::WaitQueue::Detach(cell);
      return;
    }
    bool parked;
    {
      SpinGuard tg(self->lock);
      parked = InstallBlockedLocked(self, cell,
                                    ThreadRecord::BlockKind::kCondition, this, id_,
                                    &nub_lock_, /*alertable=*/false);
    }
    if (parked) {
      ParkBlocked(self);
    }
    FinishWaitCell(self, cell);
    return;
  }
  bool parked = false;
  {
    NubGuard g(nub_lock_);
    if (ec_.Read() == i) {
      queue_.PushBack(self);
      MarkBlocked(self, ThreadRecord::BlockKind::kCondition, this, id_, &nub_lock_,
                  /*alertable=*/false);
      parked = true;
    } else {
      // A Signal or Broadcast intervened between the eventcount read and
      // now: return immediately. This is how the wakeup-waiting race is
      // covered, and why one Signal can unblock several threads.
      waiters_.fetch_sub(1, std::memory_order_relaxed);
      absorbed_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(obs::Counter::kWakeupWaitingHits);
    }
  }
  if (parked) {
    ParkBlocked(self);
  }
}

bool Condition::BlockFor(ThreadRecord* self, EventCount::Value i,
                         std::uint64_t deadline_ns) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(obs::Counter::kNubWait);
  if (nub.waitq_mode()) {
    // As Block, plus the arm/park/cancel episode; the timer's cell-cancel
    // CAS against a signaller's resume decides expiry-vs-wakeup, so a
    // Signal that dequeues this thread can never be turned into a timeout.
    waitq::WaitCell* cell = wqueue_.Enqueue();
    TAOS_CHAOS(kCondClaimToRecheck);
    if (ec_.Read() != i) {
      if (cell->Cancel() == waitq::WaitCell::CancelOutcome::kCancelled) {
        waiters_.fetch_sub(1, std::memory_order_relaxed);
        absorbed_.fetch_add(1, std::memory_order_relaxed);
        obs::Inc(obs::Counter::kWakeupWaitingHits);
      }
      waitq::WaitQueue::Detach(cell);
      return false;
    }
    bool parked;
    std::uint64_t gen = 0;
    {
      SpinGuard tg(self->lock);
      parked = InstallBlockedLocked(self, cell,
                                    ThreadRecord::BlockKind::kCondition, this, id_,
                                    &nub_lock_, /*alertable=*/false);
      if (parked) {
        gen = ++self->next_timer_gen;
        PublishTimedLocked(self, gen);
      }
    }
    if (parked) {
      Timer::Get().Arm(self, gen, deadline_ns);
      ParkBlocked(self);
      Timer::Get().Cancel(self, gen);
      TAOS_CHAOS(kCondTimedFinish);
    }
    FinishWaitCell(self, cell);
    return parked && ConsumeTimeoutWoken(self);
  }
  bool parked = false;
  std::uint64_t gen = 0;
  {
    NubGuard g(nub_lock_);
    if (ec_.Read() == i) {
      queue_.PushBack(self);
      gen = ++self->next_timer_gen;
      SpinGuard tg(self->lock);
      SetBlockedLocked(self, ThreadRecord::BlockKind::kCondition, this, id_,
                       &nub_lock_, /*alertable=*/false);
      PublishTimedLocked(self, gen);
      parked = true;
    } else {
      waiters_.fetch_sub(1, std::memory_order_relaxed);
      absorbed_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(obs::Counter::kWakeupWaitingHits);
    }
  }
  if (!parked) {
    return false;
  }
  Timer::Get().Arm(self, gen, deadline_ns);
  ParkBlocked(self);
  Timer::Get().Cancel(self, gen);
  TAOS_CHAOS(kCondTimedFinish);
  return ConsumeTimeoutWoken(self);
}

void Condition::Signal() {
  obs::WithEvent(obs::Op::kSignal, id_, [&] {
    Nub& nub = Nub::Get();
    if (nub.tracing()) {
      obs::Inc(obs::Counter::kNubSignal);
      TracedSignal(nub.Current());
      return;
    }
    // User code: avoid calling the Nub if there are no threads to unblock.
    if (waiters_.load(std::memory_order_seq_cst) == 0) {
      fast_signals_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(obs::Counter::kFastSignal);
      return;
    }
    NubSignal();
  });
}

void Condition::NubSignal() {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  nub_signals_.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(obs::Counter::kNubSignal);
  waitq::Parker* unpark = nullptr;
  {
    NubGuard g(nub_lock_);
    ec_.Advance();
    TAOS_CHAOS(kCondSignalToResume);
    if (nub.waitq_mode()) {
      const waitq::WaitQueue::Resumed r = wqueue_.ResumeOne();
      if (r.resumed) {
        waiters_.fetch_sub(1, std::memory_order_relaxed);
        unpark = r.parker;  // null on an immediate grant
      }
    } else {
      ThreadRecord* wake = queue_.PopFront();
      if (wake != nullptr) {
        waiters_.fetch_sub(1, std::memory_order_relaxed);
        MarkUnblocked(wake);
        unpark = &wake->park;
      }
    }
  }
  if (unpark != nullptr) {
    obs::Inc(obs::Counter::kHandoffs);
    unpark->Unpark();
  }
}

void Condition::Broadcast() {
  obs::WithEvent(obs::Op::kBroadcast, id_, [&] {
    Nub& nub = Nub::Get();
    if (nub.tracing()) {
      obs::Inc(obs::Counter::kNubBroadcast);
      TracedBroadcast(nub.Current());
      return;
    }
    if (waiters_.load(std::memory_order_seq_cst) == 0) {
      fast_signals_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(obs::Counter::kFastBroadcast);
      return;
    }
    NubBroadcast();
  });
}

void Condition::NubBroadcast() {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(obs::Counter::kNubBroadcast);
  std::vector<waitq::Parker*> unpark;
  {
    NubGuard g(nub_lock_);
    ec_.Advance();
    TAOS_CHAOS(kCondSignalToResume);
    if (nub.waitq_mode()) {
      for (;;) {
        const waitq::WaitQueue::Resumed r = wqueue_.ResumeOne();
        if (!r.resumed) {
          break;
        }
        waiters_.fetch_sub(1, std::memory_order_relaxed);
        if (r.parker != nullptr) {  // immediate grants need no unpark
          unpark.push_back(r.parker);
        }
      }
    } else {
      while (ThreadRecord* t = queue_.PopFront()) {
        waiters_.fetch_sub(1, std::memory_order_relaxed);
        MarkUnblocked(t);
        unpark.push_back(&t->park);
      }
    }
  }
  obs::Add(obs::Counter::kHandoffs, unpark.size());
  for (waitq::Parker* p : unpark) {
    p->Unpark();
  }
}

// ---------------------------------------------------------------------------
// Traced (spec-emitting) paths.
// ---------------------------------------------------------------------------

bool Condition::EraseWindow(ThreadRecord* rec) {
  auto it = std::find(window_.begin(), window_.end(), rec);
  if (it == window_.end()) {
    return false;
  }
  window_.erase(it);
  return true;
}

bool Condition::ErasePendingRaise(ThreadRecord* rec) {
  auto it = std::find(pending_raise_.begin(), pending_raise_.end(), rec);
  if (it == pending_raise_.end()) {
    return false;
  }
  pending_raise_.erase(it);
  return true;
}

bool Condition::ErasePendingTimeout(ThreadRecord* rec) {
  auto it = std::find(pending_timeout_.begin(), pending_timeout_.end(), rec);
  if (it == pending_timeout_.end()) {
    return false;
  }
  pending_timeout_.erase(it);
  return true;
}

void Condition::TracedWait(Mutex& m, ThreadRecord* self) {
  Nub& nub = Nub::Get();
  obs::Inc(obs::Counter::kNubWait);
  EventCount::Value snapshot = 0;
  ThreadRecord* wake = nullptr;
  {
    // Atomic action Enqueue: insert SELF into c and set m to NIL. The action
    // touches both objects, so both ObjLocks are held (NubGuard2 order).
    NubGuard2 g(m.nub_lock_, &nub_lock_);
    snapshot = ec_.Read();
    wake = m.TracedReleaseLocked(self, /*emit_release=*/false);
    window_.push_back(self);
    nub.EmitTraced(spec::MakeEnqueue(self->id, m.id_, id_));
  }
  if (wake != nullptr) {
    obs::Inc(obs::Counter::kHandoffs);
    wake->park.Unpark();
  }

  // Nub subroutine Block(c, i).
  waitq::WaitCell* cell = nullptr;
  bool parked = false;
  {
    NubGuard g(nub_lock_);
    if (ec_.Read() != snapshot) {
      // Absorbed: the intervening Signal/Broadcast removed us from c (and
      // from window_) when it emitted its action.
      TAOS_DCHECK(std::find(window_.begin(), window_.end(), self) ==
                  window_.end());
      absorbed_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(obs::Counter::kWakeupWaitingHits);
    } else {
      TAOS_CHECK(EraseWindow(self));
      if (nub.waitq_mode()) {
        cell = wqueue_.Enqueue();
        SpinGuard tg(self->lock);
        // Cannot fail: resumers hold this ObjLock, which we hold.
        TAOS_CHECK(InstallBlockedLocked(self, cell,
                                        ThreadRecord::BlockKind::kCondition,
                                        this, id_, &nub_lock_,
                                        /*alertable=*/false));
      } else {
        queue_.PushBack(self);
        MarkBlocked(self, ThreadRecord::BlockKind::kCondition, this, id_,
                    &nub_lock_, /*alertable=*/false);
      }
      parked = true;
    }
  }
  if (parked) {
    ParkBlocked(self);
    if (cell != nullptr) {
      FinishWaitCell(self, cell);
    }
  }

  // Atomic action Resume, emitted at the instant m is regained. Its WHEN
  // clause reads c (SELF NOT-IN c) but the emission holds only m's lock:
  // the Signal/Broadcast/Enqueue actions that changed SELF's membership all
  // happened-before this point, so their stamps precede this one, and no
  // other thread can re-insert SELF.
  m.TracedAcquire(self, spec::MakeResume(self->id, m.id_, id_));
}

WaitResult Condition::TracedWaitFor(Mutex& m, ThreadRecord* self,
                                    std::uint64_t deadline_ns) {
  Nub& nub = Nub::Get();
  obs::Inc(obs::Counter::kNubWait);
  // Atomic action Enqueue, exactly as in TracedWait: a timed wait enters c
  // the same way an untimed one does; only the way it may leave differs.
  EventCount::Value snapshot = 0;
  ThreadRecord* wake = nullptr;
  {
    NubGuard2 g(m.nub_lock_, &nub_lock_);
    snapshot = ec_.Read();
    wake = m.TracedReleaseLocked(self, /*emit_release=*/false);
    window_.push_back(self);
    nub.EmitTraced(spec::MakeEnqueue(self->id, m.id_, id_));
  }
  if (wake != nullptr) {
    obs::Inc(obs::Counter::kHandoffs);
    wake->park.Unpark();
  }

  // Block(c, i) with a deadline.
  waitq::WaitCell* cell = nullptr;
  bool parked = false;
  std::uint64_t gen = 0;
  {
    NubGuard g(nub_lock_);
    if (ec_.Read() != snapshot) {
      TAOS_DCHECK(std::find(window_.begin(), window_.end(), self) ==
                  window_.end());
      absorbed_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(obs::Counter::kWakeupWaitingHits);
    } else {
      TAOS_CHECK(EraseWindow(self));
      gen = ++self->next_timer_gen;
      if (nub.waitq_mode()) {
        cell = wqueue_.Enqueue();
        SpinGuard tg(self->lock);
        // Cannot fail: resumers hold this ObjLock, which we hold.
        TAOS_CHECK(InstallBlockedLocked(self, cell,
                                        ThreadRecord::BlockKind::kCondition,
                                        this, id_, &nub_lock_,
                                        /*alertable=*/false));
        PublishTimedLocked(self, gen);
      } else {
        queue_.PushBack(self);
        SpinGuard tg(self->lock);
        SetBlockedLocked(self, ThreadRecord::BlockKind::kCondition, this, id_,
                         &nub_lock_, /*alertable=*/false);
        PublishTimedLocked(self, gen);
      }
      parked = true;
    }
  }
  bool expired = false;
  if (parked) {
    Timer::Get().Arm(self, gen, deadline_ns);
    ParkBlocked(self);
    Timer::Get().Cancel(self, gen);
    if (cell != nullptr) {
      FinishWaitCell(self, cell);
    }
    expired = ConsumeTimeoutWoken(self);
  }

  if (expired) {
    // Atomic action TimeoutResume: regain m and leave c in one step. The
    // timer left SELF in pending_timeout_ — still a spec-member of c, as a
    // raiser stays in pending_raise_ — so the action's delete(c, SELF) and
    // the bookkeeping erase happen together under m's and c's locks.
    Condition* cp = this;
    m.TracedAcquire(self, spec::MakeTimeoutResume(self->id, m.id_, id_),
                    &nub_lock_,
                    [cp, self] { cp->ErasePendingTimeout(self); });
    return WaitResult::kTimeout;
  }
  // Atomic action Resume, as in TracedWait.
  m.TracedAcquire(self, spec::MakeResume(self->id, m.id_, id_));
  return WaitResult::kSatisfied;
}

void Condition::TracedSignal(ThreadRecord* self) {
  Nub& nub = Nub::Get();
  nub_signals_.fetch_add(1, std::memory_order_relaxed);
  ThreadRecord* wake = nullptr;
  {
    NubGuard g(nub_lock_);
    ec_.Advance();
    spec::ThreadSet removed;
    if (nub.waitq_mode()) {
      const waitq::WaitQueue::Resumed r = wqueue_.ResumeOne();
      if (r.resumed) {
        wake = static_cast<ThreadRecord*>(r.tag);
        TAOS_CHECK(wake != nullptr);  // no immediate grants in traced mode
        removed = removed.Insert(wake->id);
        // The waiter unblocks itself in FinishWaitCell.
      }
    } else {
      wake = queue_.PopFront();
      if (wake != nullptr) {
        removed = removed.Insert(wake->id);
        MarkUnblocked(wake);
      }
    }
    // Every thread in the wakeup-waiting window absorbs this increment, so
    // this Signal removes them all from c.
    for (ThreadRecord* r : window_) {
      removed = removed.Insert(r->id);
    }
    window_.clear();
    // Threads committed to raising Alerted are still spec-members of c;
    // removing them here keeps Signal's ENSURES honest (a Signal may be
    // consumed by a thread that then raises — the paper's corrected
    // AlertWait semantics).
    for (ThreadRecord* r : pending_raise_) {
      removed = removed.Insert(r->id);
    }
    pending_raise_.clear();
    // Likewise for threads the timer already dequeued: the implementation
    // cannot wake them, so leaving them in c would let a Signal whose
    // removed set is otherwise empty violate its own ENSURES
    // (cpost = c is neither {} nor a proper subset). TimeoutResume's
    // delete(c, SELF) is idempotent, so removing them here is safe.
    for (ThreadRecord* r : pending_timeout_) {
      removed = removed.Insert(r->id);
    }
    pending_timeout_.clear();
    nub.EmitTraced(spec::MakeSignal(self->id, id_, removed));
  }
  if (wake != nullptr) {
    obs::Inc(obs::Counter::kHandoffs);
    wake->park.Unpark();
  }
}

void Condition::TracedBroadcast(ThreadRecord* self) {
  Nub& nub = Nub::Get();
  std::vector<ThreadRecord*> wake;
  {
    NubGuard g(nub_lock_);
    ec_.Advance();
    spec::ThreadSet removed;
    if (nub.waitq_mode()) {
      for (;;) {
        const waitq::WaitQueue::Resumed r = wqueue_.ResumeOne();
        if (!r.resumed) {
          break;
        }
        ThreadRecord* t = static_cast<ThreadRecord*>(r.tag);
        TAOS_CHECK(t != nullptr);  // no immediate grants in traced mode
        removed = removed.Insert(t->id);
        wake.push_back(t);
      }
    } else {
      while (ThreadRecord* t = queue_.PopFront()) {
        removed = removed.Insert(t->id);
        MarkUnblocked(t);
        wake.push_back(t);
      }
    }
    for (ThreadRecord* r : window_) {
      removed = removed.Insert(r->id);
    }
    window_.clear();
    for (ThreadRecord* r : pending_raise_) {
      removed = removed.Insert(r->id);
    }
    pending_raise_.clear();
    for (ThreadRecord* r : pending_timeout_) {
      removed = removed.Insert(r->id);
    }
    pending_timeout_.clear();
    nub.EmitTraced(spec::MakeBroadcast(self->id, id_, removed));
  }
  obs::Add(obs::Counter::kHandoffs, wake.size());
  for (ThreadRecord* t : wake) {
    t->park.Unpark();
  }
}

}  // namespace taos
