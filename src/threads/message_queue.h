// Bounded MPMC message queue built from the paper's primitives plus the
// multi-object wait subsystem: a Mutex guards a ring buffer, and two
// manual-reset Events publish the queue's *level-triggered* readiness so
// receivers (and senders) can fold the queue into a Poll wait set:
//
//   receiver:  Poll p; p.Add(q.readable()); p.Add(shutdown);
//              switch (p.WaitAny()) { case 0: q.TryRecv(&m); ... }
//
// Invariants, maintained under mu_ at every edge:
//
//   readable().IsSet()  ⇔  !empty ∨ closed
//   writable().IsSet()  ⇔  !full  ∨ closed
//
// The events are manual-reset and Mesa-style: a wakeup (or a Poll grant) on
// readable() is a *hint*, not a handoff — another consumer may drain the
// item first, so every waiter re-tries under the mutex (TryRecv returning
// kWouldBlock) and re-waits. This is the same barging discipline as
// Mutex/Condition, and it is what makes the composition safe: the events
// carry no ownership, only level state.
//
// Close() is sticky: it sets both events permanently (closed counts as
// "ready" so blocked parties wake and observe the closure). Send fails on
// a closed queue; Recv drains remaining items first and fails only on
// closed-and-empty.

#ifndef TAOS_SRC_THREADS_MESSAGE_QUEUE_H_
#define TAOS_SRC_THREADS_MESSAGE_QUEUE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

#include "src/base/chaos.h"
#include "src/base/check.h"
#include "src/obs/metrics.h"
#include "src/threads/event.h"
#include "src/threads/lock.h"
#include "src/threads/mutex.h"
#include "src/threads/timer.h"
#include "src/threads/wait_result.h"

namespace taos {

enum class QueueResult : std::uint8_t {
  kOk,
  kClosed,      // Send: queue closed; Recv: closed and drained
  kTimeout,     // *For variants only
  kWouldBlock,  // Try* variants only: full (send) / empty-but-open (recv)
};

template <typename T>
class MessageQueue {
 public:
  // REQUIRES capacity > 0.
  explicit MessageQueue(std::size_t capacity)
      : cap_(capacity),
        storage_(new unsigned char[sizeof(T) * capacity]) {
    TAOS_CHECK(capacity > 0);
    // Empty and not closed: writable, not readable.
    writable_.Set();
  }

  // REQUIRES no blocked senders/receivers and no live poll registrations
  // on readable()/writable() (the Events' destructors check).
  ~MessageQueue() {
    {
      Lock l(mu_);
      while (size_ > 0) {
        Slot(head_)->~T();
        head_ = Next(head_);
        --size_;
      }
    }
    delete[] storage_;
  }

  MessageQueue(const MessageQueue&) = delete;
  MessageQueue& operator=(const MessageQueue&) = delete;

  // Blocks while the queue is full; kClosed if the queue is (or becomes)
  // closed before the item is accepted.
  QueueResult Send(T v) {
    for (;;) {
      QueueResult r = TrySendInternal(&v);
      if (r != QueueResult::kWouldBlock) {
        return r;
      }
      writable_.Wait();
    }
  }

  // Single attempt, never blocks.
  QueueResult TrySend(T v) { return TrySendInternal(&v); }

  // Send with a deadline on the *full* wait.
  QueueResult SendFor(T v, std::chrono::nanoseconds timeout) {
    const std::uint64_t deadline =
        timeout.count() > 0 ? DeadlineAfter(timeout) : 0;
    for (;;) {
      QueueResult r = TrySendInternal(&v);
      if (r != QueueResult::kWouldBlock) {
        return r;
      }
      if (writable_.WaitFor(RemainingUntil(deadline)) == WaitResult::kTimeout) {
        return QueueResult::kTimeout;
      }
    }
  }

  // Blocks while the queue is empty and open; kClosed only once closed AND
  // drained.
  QueueResult Recv(T* out) {
    for (;;) {
      QueueResult r = TryRecvInternal(out);
      if (r != QueueResult::kWouldBlock) {
        return r;
      }
      readable_.Wait();
    }
  }

  QueueResult TryRecv(T* out) { return TryRecvInternal(out); }

  QueueResult RecvFor(T* out, std::chrono::nanoseconds timeout) {
    const std::uint64_t deadline =
        timeout.count() > 0 ? DeadlineAfter(timeout) : 0;
    for (;;) {
      QueueResult r = TryRecvInternal(out);
      if (r != QueueResult::kWouldBlock) {
        return r;
      }
      if (readable_.WaitFor(RemainingUntil(deadline)) == WaitResult::kTimeout) {
        return QueueResult::kTimeout;
      }
    }
  }

  // Sticky: wakes every blocked sender, receiver and poller. Idempotent.
  void Close() {
    Lock l(mu_);
    if (closed_) {
      return;
    }
    closed_ = true;
    TAOS_CHAOS(kMsgqHandoff);
    // closed ⇒ both ready, permanently.
    readable_.Set();
    writable_.Set();
  }

  // Level-state events for Poll composition. A grant on readable() means
  // "an item is probably available": follow with TryRecv and re-wait on
  // kWouldBlock (another consumer may have drained it first).
  Event& readable() { return readable_; }
  Event& writable() { return writable_; }

  bool closed() const {
    Lock l(mu_);
    return closed_;
  }

  std::size_t capacity() const { return cap_; }

 private:
  T* Slot(std::size_t i) {
    return std::launder(reinterpret_cast<T*>(storage_ + sizeof(T) * i));
  }
  std::size_t Next(std::size_t i) const { return (i + 1 == cap_) ? 0 : i + 1; }

  static std::chrono::nanoseconds RemainingUntil(std::uint64_t deadline_ns) {
    const std::uint64_t now = obs::NowNanos();
    return std::chrono::nanoseconds(
        deadline_ns > now ? static_cast<std::int64_t>(deadline_ns - now) : 0);
  }

  QueueResult TrySendInternal(T* v) {
    Lock l(mu_);
    if (closed_) {
      return QueueResult::kClosed;
    }
    if (size_ == cap_) {
      return QueueResult::kWouldBlock;
    }
    new (storage_ + sizeof(T) * tail_) T(std::move(*v));
    tail_ = Next(tail_);
    ++size_;
    TAOS_CHAOS(kMsgqHandoff);
    // Edges under mu_: the queue just became (or stays) non-empty; it may
    // have just become full.
    readable_.Set();
    if (size_ == cap_) {
      writable_.Reset();
    }
    return QueueResult::kOk;
  }

  QueueResult TryRecvInternal(T* out) {
    Lock l(mu_);
    if (size_ == 0) {
      return closed_ ? QueueResult::kClosed : QueueResult::kWouldBlock;
    }
    *out = std::move(*Slot(head_));
    Slot(head_)->~T();
    head_ = Next(head_);
    --size_;
    TAOS_CHAOS(kMsgqHandoff);
    if (size_ == 0 && !closed_) {
      readable_.Reset();
    }
    writable_.Set();
    return QueueResult::kOk;
  }

  const std::size_t cap_;
  unsigned char* storage_;
  mutable Mutex mu_;
  std::size_t head_ = 0;  // index of the oldest item
  std::size_t tail_ = 0;  // index of the next free slot
  std::size_t size_ = 0;
  bool closed_ = false;
  Event readable_{EventReset::kManual};
  Event writable_{EventReset::kManual};
};

}  // namespace taos

#endif  // TAOS_SRC_THREADS_MESSAGE_QUEUE_H_
