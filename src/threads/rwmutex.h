// ReaderWriterMutex: Acquire / Release (exclusive) and AcquireShared /
// ReleaseShared, with timed variants.
//
// Not in SRC Report 20 — this is a first-class extension primitive built
// the way the paper builds Mutex, and specified the same Larch way
// (src/spec/semantics.cc grows the clauses):
//
//   TYPE RWLock = RECORD [writer: Thread INITIALLY NIL,
//                         readers: SET OF Thread INITIALLY {}]
//   ATOMIC PROCEDURE Acquire(VAR rw: RWLock)
//     MODIFIES AT MOST [rw]
//     WHEN rw.writer = NIL AND rw.readers = {}  ENSURES rw.writer' = SELF
//   ATOMIC PROCEDURE Release(VAR rw: RWLock)
//     REQUIRES rw.writer = SELF
//     MODIFIES AT MOST [rw]  ENSURES rw.writer' = NIL
//   ATOMIC PROCEDURE AcquireShared(VAR rw: RWLock)
//     REQUIRES NOT (SELF IN rw.readers)
//     MODIFIES AT MOST [rw]
//     WHEN rw.writer = NIL  ENSURES rw.readers' = rw.readers + {SELF}
//   ATOMIC PROCEDURE ReleaseShared(VAR rw: RWLock)
//     REQUIRES SELF IN rw.readers
//     MODIFIES AT MOST [rw]  ENSURES rw.readers' = rw.readers - {SELF}
//
// Implementation: the same two-layer design as Mutex. The user-code state
// is one word — a writer bit plus a 31-bit reader count. The reader fast
// path is a CAS increment while the writer bit is clear; the writer fast
// path is a CAS of 0 -> writer-bit. The Nub slow paths keep two queues
// (readers, writers) under the object's ObjLock — classic intrusive lists
// or the TAOS_WAITQ cell substrate, exactly as Mutex — with atomic length
// mirrors so the release-side "anyone queued?" test is a data-race-free
// load. The design barges like Mutex: a release makes waiters ready, but
// any thread may win the retried CAS first, so the spec deliberately says
// nothing about fairness (the writer-starvation litmus in src/model
// measures the consequence).
//
// Wakeup policy: an exclusive release wakes every queued reader and one
// queued writer; the last shared release wakes one queued writer. Readers
// only ever block on the writer bit, so nothing else can strand them.
//
// rwlock waits are not alertable (like Acquire, unlike Wait/P), and the
// timed variants follow Mutex::AcquireFor: a grant that races the deadline
// is kept, never converted into a timeout.

#ifndef TAOS_SRC_THREADS_RWMUTEX_H_
#define TAOS_SRC_THREADS_RWMUTEX_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "src/base/intrusive_queue.h"
#include "src/spec/action.h"
#include "src/spec/state.h"
#include "src/threads/nub.h"
#include "src/threads/thread_record.h"
#include "src/threads/wait_result.h"
#include "src/waitq/waitq.h"

namespace taos {

class ReaderWriterMutex {
 public:
  ReaderWriterMutex();
  ~ReaderWriterMutex();
  ReaderWriterMutex(const ReaderWriterMutex&) = delete;
  ReaderWriterMutex& operator=(const ReaderWriterMutex&) = delete;

  // --- exclusive (writer) mode ---
  void Acquire();
  bool TryAcquire();
  WaitResult AcquireFor(std::chrono::nanoseconds timeout);
  void Release();

  // --- shared (reader) mode ---
  void AcquireShared();
  bool TryAcquireShared();
  WaitResult AcquireSharedFor(std::chrono::nanoseconds timeout);
  void ReleaseShared();

  // The exclusive holder, or kNil. Racy; for debuggers and tests only.
  spec::ThreadId HolderForDebug() const {
    return holder_.load(std::memory_order_relaxed);
  }
  // The reader count. Racy; for debuggers and tests only.
  std::uint32_t ReadersForDebug() const {
    return word_.load(std::memory_order_relaxed) & ~kWriterBit;
  }

  spec::ObjId id() const { return id_; }

  // --- statistics (relaxed counters) ---
  std::uint64_t fast_acquires() const {
    return fast_acquires_.load(std::memory_order_relaxed);
  }
  std::uint64_t slow_acquires() const {
    return slow_acquires_.load(std::memory_order_relaxed);
  }
  void ResetStats() {
    fast_acquires_.store(0, std::memory_order_relaxed);
    slow_acquires_.store(0, std::memory_order_relaxed);
  }

 private:
  friend class Timer;

  static constexpr std::uint32_t kWriterBit = 1u << 31;

  // The reader fast path: CAS-increment while the writer bit is clear.
  // Returns false once it observes the writer bit (never blocks).
  bool SharedCasLoop();

  // Nub subroutines: enqueue on the respective queue, re-test the word,
  // de-schedule if still excluded; retry the whole acquisition from the
  // CAS. Classic and waitq variants, untimed and timed — the same eight
  // shapes as Mutex, over two queues.
  void NubAcquire(ThreadRecord* self);
  void WaitqAcquire(ThreadRecord* self);
  void NubAcquireShared(ThreadRecord* self);
  void WaitqAcquireShared(ThreadRecord* self);
  bool NubAcquireFor(ThreadRecord* self, std::uint64_t deadline_ns);
  bool WaitqAcquireFor(ThreadRecord* self, std::uint64_t deadline_ns);
  bool NubAcquireSharedFor(ThreadRecord* self, std::uint64_t deadline_ns);
  bool WaitqAcquireSharedFor(ThreadRecord* self, std::uint64_t deadline_ns);

  // Release-side Nub subroutines. An exclusive release drains the reader
  // queue and unblocks one writer; the last shared release unblocks one
  // writer. Unparks happen after the ObjLock is dropped.
  void NubReleaseExclusive();
  void NubWakeOneWriter();

  // Exclusive-acquire epilogue; owner stamps mirror Mutex::NoteAcquired.
  // Shared holders are deliberately NOT stamped: a reader-held rwmutex has
  // no single owner, so the waits-for graph treats it as owner-unknown
  // (which can hide a reader-writer deadlock from the cycle finder, but
  // never invents one — the stall dump still shows every edge).
  void NoteAcquired(ThreadRecord* self) {
    holder_.store(self->id, std::memory_order_relaxed);
    if (obs::diag::Enabled()) [[unlikely]] {
      TAOS_CHAOS(kDiagOwnerStamp);
      obs::diag::StampOwner(id_, self->id);
    }
  }

  void NoteReleased() {
    holder_.store(spec::kNil, std::memory_order_relaxed);
    if (obs::diag::Enabled()) [[unlikely]] {
      obs::diag::ClearOwner(id_);
    }
  }

  // Traced (spec-emitting) paths; the same shape as Mutex's, with the
  // word manipulated under the ObjLock and the action emitted under
  // self's record lock.
  void TracedAcquire(ThreadRecord* self);
  void TracedAcquireShared(ThreadRecord* self);
  bool TracedAcquireFor(ThreadRecord* self, std::uint64_t deadline_ns);
  bool TracedAcquireSharedFor(ThreadRecord* self, std::uint64_t deadline_ns);
  void TracedRelease(ThreadRecord* self);
  void TracedReleaseShared(ThreadRecord* self);

  // Writer bit | 31-bit reader count.
  std::atomic<std::uint32_t> word_{0};
  ObjLock nub_lock_;  // guards both queues (the slow paths)
  IntrusiveQueue<ThreadRecord> readers_queue_;  // classic backend
  IntrusiveQueue<ThreadRecord> writers_queue_;
  waitq::WaitQueue wreaders_;  // waiter-queue backend (TAOS_WAITQ)
  waitq::WaitQueue wwriters_;
  std::atomic<std::int32_t> reader_q_len_{0};
  std::atomic<std::int32_t> writer_q_len_{0};
  std::atomic<spec::ThreadId> holder_{spec::kNil};
  spec::ObjId id_;

  std::atomic<std::uint64_t> fast_acquires_{0};
  std::atomic<std::uint64_t> slow_acquires_{0};
};

// RAII brackets, mirroring Lock (threads.h) for the two modes.
class WriteLock {
 public:
  explicit WriteLock(ReaderWriterMutex& rw) : rw_(rw) { rw_.Acquire(); }
  ~WriteLock() { rw_.Release(); }
  WriteLock(const WriteLock&) = delete;
  WriteLock& operator=(const WriteLock&) = delete;

 private:
  ReaderWriterMutex& rw_;
};

class ReadLock {
 public:
  explicit ReadLock(ReaderWriterMutex& rw) : rw_(rw) { rw_.AcquireShared(); }
  ~ReadLock() { rw_.ReleaseShared(); }
  ReadLock(const ReadLock&) = delete;
  ReadLock& operator=(const ReadLock&) = delete;

 private:
  ReaderWriterMutex& rw_;
};

}  // namespace taos

#endif  // TAOS_SRC_THREADS_RWMUTEX_H_
