#include "src/threads/thread.h"

#include <utility>

#include "src/base/check.h"
#include "src/threads/alert.h"
#include "src/threads/nub.h"

namespace taos {

Thread::~Thread() {
  if (os_.joinable()) {
    os_.join();
  }
}

Thread Thread::Fork(std::function<void()> fn) {
  // The record is created by the parent so the handle is valid immediately,
  // even before the child runs (Alert on a not-yet-started thread must
  // work: the pending alert is found at the child's first alertable point).
  ThreadRecord* rec = Nub::Get().CreateRecord();
  std::thread os([rec, fn = std::move(fn)]() mutable {
    Nub::AdoptRecord(rec);
    try {
      fn();
    } catch (const Alerted&) {
      rec->ended_by_alert.store(true, std::memory_order_release);
    }
  });
  return Thread(rec, std::move(os));
}

void Thread::Join() {
  TAOS_CHECK(os_.joinable());
  os_.join();
}

ThreadHandle Thread::Self() { return ThreadHandle{Nub::Get().Current()}; }

bool Thread::EndedByAlert() const {
  TAOS_CHECK(rec_ != nullptr);
  return rec_->ended_by_alert.load(std::memory_order_acquire);
}

}  // namespace taos
