// The Nub: the lower layer of the two-layer implementation described in SRC
// Report 20.
//
// "The Nub subroutines execute under the protection of a more primitive
// mutual exclusion mechanism, a spin-lock. [...] Nub subroutines acquire the
// spin-lock, perform their visible actions, and release the spin-lock."
//
// On the Firefly the Nub lived in a shared kernel address space and also ran
// the scheduler. Here the host OS supplies processors and scheduling, so the
// Nub reduces to: the global spin-lock, the thread registry, and the
// spec-tracing machinery. Parking/unparking a thread's private semaphore
// stands in for de-scheduling / adding to the ready pool (see
// DESIGN.md, Substitutions).
//
// Spec tracing: when a TraceSink is installed, every synchronization
// operation takes its Nub (slow) path and emits its spec-visible atomic
// action while holding the spin-lock, so the emission order is a legal
// serialization of the actions. Tracing must be enabled while the system is
// quiescent (no concurrent synchronization in flight).

#ifndef TAOS_SRC_THREADS_NUB_H_
#define TAOS_SRC_THREADS_NUB_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/spinlock.h"
#include "src/spec/trace.h"
#include "src/threads/thread_record.h"

namespace taos {

class Nub {
 public:
  static Nub& Get();

  Nub(const Nub&) = delete;
  Nub& operator=(const Nub&) = delete;

  // The globally shared spin-lock bit protecting all Nub state.
  SpinLock& lock() { return lock_; }

  // The calling thread's record, registering it on first use.
  ThreadRecord* Current();

  // Creates a record for a thread that has not started yet (Thread::Fork
  // allocates the child's record up front so the parent gets a handle
  // immediately). The new thread adopts it via AdoptRecord.
  ThreadRecord* CreateRecord();
  static void AdoptRecord(ThreadRecord* rec);

  ThreadRecord* RecordFor(spec::ThreadId id);

  // --- spec tracing ---
  void SetTrace(spec::TraceSink* sink) {
    trace_.store(sink, std::memory_order_release);
  }
  spec::TraceSink* trace() const {
    return trace_.load(std::memory_order_acquire);
  }
  bool tracing() const { return trace() != nullptr; }

  // Fresh ObjId for a Mutex/Condition/Semaphore.
  spec::ObjId NextObjId() {
    return next_obj_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- global statistics (relaxed counters; see EXPERIMENTS.md) ---
  std::atomic<std::uint64_t> nub_entries{0};  // slow-path entries, all ops

  void ResetStats() { nub_entries.store(0, std::memory_order_relaxed); }

 private:
  Nub() = default;

  SpinLock lock_;
  std::atomic<spec::TraceSink*> trace_{nullptr};
  std::atomic<spec::ObjId> next_obj_id_{1};

  SpinLock registry_lock_;
  std::vector<std::unique_ptr<ThreadRecord>> registry_;
  std::atomic<spec::ThreadId> next_thread_id_{1};
};

}  // namespace taos

#endif  // TAOS_SRC_THREADS_NUB_H_
