// The Nub: the lower layer of the two-layer implementation described in SRC
// Report 20.
//
// "The Nub subroutines execute under the protection of a more primitive
// mutual exclusion mechanism, a spin-lock. [...] Nub subroutines acquire the
// spin-lock, perform their visible actions, and release the spin-lock."
//
// On the Firefly the Nub lived in a shared kernel address space and also ran
// the scheduler, and a single globally shared spin-lock bit serialized every
// slow path. Here the host OS supplies processors and scheduling, so the Nub
// reduces to: the slow-path locking discipline, the thread registry, and the
// spec-tracing machinery. Parking/unparking a thread's private semaphore
// stands in for de-scheduling / adding to the ready pool (see DESIGN.md,
// Substitutions).
//
// Lock sharding (departure from the paper, documented in DESIGN.md §8): the
// paper's single global spin-lock is the canonical non-scalable bottleneck,
// so by default every Mutex, Condition and Semaphore carries its own ObjLock
// and every ThreadRecord carries a parking-lot lock. Setting the environment
// variable TAOS_NUB_GLOBAL_LOCK=1 (or calling Nub::SetGlobalLockMode while
// quiescent) restores the paper-faithful configuration: every ObjLock then
// resolves to the one global spin-lock bit, for A/B benchmarking.
//
// The lock-ordering discipline (deadlock freedom):
//   1. Object locks are acquired before thread-record locks, never after.
//   2. When one atomic action spans two objects (Wait/AlertWait's Enqueue
//      releases m while inserting into c; AlertResume/RAISES regains m while
//      leaving c), both ObjLocks are taken in ascending address order
//      (NubGuard2). In global-lock mode both resolve to the same bit and it
//      is acquired once.
//   3. Alert(t) learns which object t is blocked on from t's record, so it
//      must take the thread-record lock first — backwards. It therefore only
//      TRY-acquires the object lock and, on failure, releases the record
//      lock and retries (the holder of the object lock may be concurrently
//      waking t). The try breaks the cycle with rule 1. While the record
//      lock is held and t is observed blocked on the object, the object
//      cannot be destroyed (t has not returned from its blocking call), so
//      the try-acquire never touches freed memory.
//
// Spec tracing: when a TraceSink is installed, every synchronization
// operation takes its Nub (slow) path and emits its spec-visible atomic
// action while holding the lock(s) guarding every piece of spec state the
// action reads or writes. Each emission is stamped with a globally unique
// sequence number drawn from one atomic counter while those locks are held;
// because every cross-thread ordering between actions is established by a
// lock or atomic that also orders the counter increments, sorting a trace by
// stamp yields a legal serialization of the actions (DESIGN.md §8 gives the
// argument). Tracing must be enabled while the system is quiescent (no
// concurrent synchronization in flight).

#ifndef TAOS_SRC_THREADS_NUB_H_
#define TAOS_SRC_THREADS_NUB_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "src/base/spinlock.h"
#include "src/spec/trace.h"
#include "src/threads/thread_record.h"

namespace taos {

class Nub {
 public:
  static Nub& Get();

  Nub(const Nub&) = delete;
  Nub& operator=(const Nub&) = delete;

  // The globally shared spin-lock bit. In global-lock mode every ObjLock
  // resolves to this; in sharded mode it is only used by baselines that
  // want a process-wide lock (e.g. baseline::HandoffMutex).
  SpinLock& lock() { return lock_; }

  // True when the paper-faithful single-global-spin-lock configuration is
  // active. Initialized from the TAOS_NUB_GLOBAL_LOCK environment variable.
  bool global_lock_mode() const {
    return global_lock_mode_.load(std::memory_order_relaxed);
  }

  // Switches between the sharded and global-lock configurations. Only legal
  // while the system is quiescent: no thread blocked or inside a
  // synchronization operation (a lock taken in one mode must be released in
  // the same mode).
  void SetGlobalLockMode(bool on) {
    global_lock_mode_.store(on, std::memory_order_relaxed);
  }

  // True when the slow paths run on the waiter-queue substrate (src/waitq):
  // lock-free segment-queue enqueue, FIFO resume, Alert-as-cancellation —
  // instead of the classic ObjLock-guarded intrusive queues. Initialized
  // from the TAOS_WAITQ environment variable (compile-time default via the
  // TAOS_WAITQ CMake option). Orthogonal to global_lock_mode: the resume
  // side still serializes on the ObjLock either way.
  bool waitq_mode() const {
    return waitq_mode_.load(std::memory_order_relaxed);
  }

  // Quiescent-only, like SetGlobalLockMode: a thread enqueued by one
  // backend must be resumed by the same backend.
  void SetWaitqMode(bool on) {
    waitq_mode_.store(on, std::memory_order_relaxed);
  }

  // The mutual-exclusion core under every ObjLock and record lock
  // (TAOS_LOCK={tas,mcs,clh}; see src/base/spinlock.h). Process-wide state
  // on SpinLock itself; surfaced here so callers switch all three runtime
  // policies — sharding, waiter queue, lock core — through one interface.
  LockBackend lock_backend() const { return SpinLock::backend(); }

  // Quiescent-only, stricter than SetWaitqMode: every SpinLock in the
  // process must be free, because each core keeps its own "held" state.
  // The caller quiesces its own threads by joining them; the timer thread
  // — detached, and a SpinLock user on every tick — is quiesced here, so
  // use this (not SpinLock::SetBackend) in any process that takes timed
  // waits. Out of line: the timer gate lives above the base layer.
  void SetLockBackend(LockBackend b);

  // The calling thread's record, registering it on first use.
  ThreadRecord* Current();

  // Creates a record for a thread that has not started yet (Thread::Fork
  // allocates the child's record up front so the parent gets a handle
  // immediately). The new thread adopts it via AdoptRecord.
  ThreadRecord* CreateRecord();
  static void AdoptRecord(ThreadRecord* rec);

  ThreadRecord* RecordFor(spec::ThreadId id);

  // --- spec tracing ---
  void SetTrace(spec::TraceSink* sink) {
    trace_.store(sink, std::memory_order_release);
  }
  spec::TraceSink* trace() const {
    return trace_.load(std::memory_order_acquire);
  }
  bool tracing() const { return trace() != nullptr; }

  // Stamps the action with the global serialization sequence number and
  // forwards it to the installed sink. The caller must hold the lock(s)
  // guarding all spec state the action reads or writes, so that the stamp
  // order restricted to any one object (or thread's alert flag) matches the
  // order the state changes actually took effect. The sink is loaded once:
  // callers race their tracing() check against SetTrace(nullptr), so the
  // action is dropped — not emitted through a dangling pointer — when the
  // sink was removed in between. (SetTrace(nullptr) is documented
  // quiescent-only; this makes the failure mode of a violation a truncated
  // trace rather than a null dereference.)
  void EmitTraced(spec::Action action) {
    spec::TraceSink* sink = trace();
    if (sink == nullptr) {
      return;
    }
    action.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    sink->Emit(action);
  }

  // Fresh ObjId for a Mutex/Condition/Semaphore.
  spec::ObjId NextObjId() {
    return next_obj_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- global statistics (relaxed counters; see EXPERIMENTS.md) ---
  std::atomic<std::uint64_t> nub_entries{0};  // slow-path entries, all ops

  void ResetStats() { nub_entries.store(0, std::memory_order_relaxed); }

 private:
  Nub();

  SpinLock lock_;
  std::atomic<bool> global_lock_mode_{false};
  std::atomic<bool> waitq_mode_{false};
  std::atomic<spec::TraceSink*> trace_{nullptr};
  std::atomic<spec::ObjId> next_obj_id_{1};
  std::atomic<std::uint64_t> next_seq_{0};

  SpinLock registry_lock_;
  std::vector<std::unique_ptr<ThreadRecord>> registry_;
  std::atomic<spec::ThreadId> next_thread_id_{1};
};

// The slow-path lock carried by each Mutex, Condition and Semaphore. In the
// default sharded mode it is the object's private spin-lock; in global-lock
// mode it resolves to the Nub's one shared bit.
class ObjLock {
 public:
  ObjLock() = default;
  ObjLock(const ObjLock&) = delete;
  ObjLock& operator=(const ObjLock&) = delete;

  SpinLock* Resolve() {
    Nub& nub = Nub::Get();
    return nub.global_lock_mode() ? &nub.lock() : &own_;
  }

 private:
  SpinLock own_;
};

// RAII bracket acquiring one object's slow-path lock.
class NubGuard {
 public:
  explicit NubGuard(ObjLock& l) : lock_(l.Resolve()) { lock_->Acquire(); }
  ~NubGuard() { lock_->Release(); }

  NubGuard(const NubGuard&) = delete;
  NubGuard& operator=(const NubGuard&) = delete;

 private:
  SpinLock* lock_;
};

// Backoff for the rule-3 try-lock dance (Alert, Timer::ExpireEntry): called
// after releasing t's record lock because the object-lock TryAcquire failed.
// Deliberately reads nothing: once the record lock is dropped, the
// object-lock holder may wake t, the waiter returns from its blocking call,
// and the synchronization object — the spin-lock the failed TryAcquire
// targeted included — may be destroyed, so even a relaxed IsHeld() peek here
// would touch freed memory (the alive guarantee in rule 3 ends with the
// record lock). The yield is also what breaks the retry livelock: the holder
// is typically a Signal/Release spinning for t's record lock to wake t, and
// descheduling for a quantum hands it a window no pause-sized gap provides.
inline void Rule3Backoff() {
  for (int i = 0; i < 64; ++i) {
    SpinLock::Pause();
  }
  std::this_thread::yield();
}

// RAII bracket for an atomic action spanning two objects (rule 2 of the
// lock-ordering discipline): acquires both locks in ascending address order.
// `b` may be null (degenerates to NubGuard), and when both resolve to the
// same spin-lock (global-lock mode) it is acquired once.
class NubGuard2 {
 public:
  NubGuard2(ObjLock& a, ObjLock* b)
      : first_(a.Resolve()), second_(b != nullptr ? b->Resolve() : nullptr) {
    if (second_ == first_) {
      second_ = nullptr;
    } else if (second_ != nullptr &&
               reinterpret_cast<std::uintptr_t>(second_) <
                   reinterpret_cast<std::uintptr_t>(first_)) {
      std::swap(first_, second_);
    }
    first_->Acquire();
    if (second_ != nullptr) {
      second_->Acquire();
    }
  }
  ~NubGuard2() {
    if (second_ != nullptr) {
      second_->Release();
    }
    first_->Release();
  }

  NubGuard2(const NubGuard2&) = delete;
  NubGuard2& operator=(const NubGuard2&) = delete;

 private:
  SpinLock* first_;
  SpinLock* second_;
};

}  // namespace taos

#endif  // TAOS_SRC_THREADS_NUB_H_
