// Umbrella header for the Taos Threads synchronization interface.
//
// The public API (see README.md for the informal description and
// src/spec for the formal one):
//
//   taos::Mutex         Acquire, Release          (+ Lock RAII sugar)
//   taos::Condition     Wait, Signal, Broadcast
//   taos::Semaphore     P, V
//   taos::Alerted       Alert, TestAlert, AlertWait, AlertP
//   taos::Thread        Fork, Join, Handle
//   taos::Event         Set, Reset, Wait          (manual / auto reset)
//   taos::Poll          WaitAny, WaitAll          (+ timed / alertable)
//   taos::MessageQueue  Send, Recv, Close         (bounded, pollable)

#ifndef TAOS_SRC_THREADS_THREADS_H_
#define TAOS_SRC_THREADS_THREADS_H_

#include "src/threads/alert.h"
#include "src/threads/condition.h"
#include "src/threads/event.h"
#include "src/threads/lock.h"
#include "src/threads/message_queue.h"
#include "src/threads/mutex.h"
#include "src/threads/nub.h"
#include "src/threads/poll.h"
#include "src/threads/rwmutex.h"
#include "src/threads/semaphore.h"
#include "src/threads/thread.h"

#endif  // TAOS_SRC_THREADS_THREADS_H_
