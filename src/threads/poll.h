// Multi-object wait: block until ANY (or ALL) of a set of Events is set.
//
// Specification (extension; not in SRC Report 20 — but exactly the kind of
// WHEN-clause composition its Larch idiom invites; the hard part Hayes's
// checker-oriented treatments call out is that the WHEN now ranges over a
// *set* of state variables):
//
//   WaitAny(W):  ATOMIC  WHEN (∃ e ∈ W: e)
//                ENSURES granted ∈ W ∧ e_granted^pre
//                        ∧ (auto(granted) ⇒ e_granted^post = FALSE)
//                        ∧ UNCHANGED [W \ {granted}]
//   WaitAll(W):  ATOMIC  WHEN (∀ e ∈ W: e)
//                ENSURES (∀ e ∈ W: auto(e) ⇒ e^post = FALSE)
//                        ∧ UNCHANGED [manual members]
//   Both REQUIRES W # {}.
//
// Implementation: the notify-latch protocol (DESIGN.md §15). The waiter
// owns a per-thread latch (ThreadRecord::poll_latch). Each round it re-arms
// the latch, registers on every member's pollable list, scans, and — if
// nothing is ready and the latch is still 0 under its record lock — parks.
// Event::Set notifies registrants by flipping the latch; the 0->1 winner
// performs the record-lock unblock dance. Crucially Set is *notify-only*:
// it never consumes the event on the waiter's behalf, so
//   - a notification that races a timeout or an Alert is benign (the waiter
//     re-scans once and takes whichever outcome holds),
//   - deregistering from the losers after a grant on one member cannot lose
//     a signal (the flag, not the notification, carries the state), and
//   - exactly-one-consumption of an auto-reset pulse is decided by the
//     waiter's own atomic exchange, the same arbitration the single-object
//     Wait uses.
//
// Lock ordering (vs the discipline in nub.h): registration and the granter
// walk take one event's ObjLock at a time (rule 1 shape); WaitAll's scan
// takes all member locks at once in ascending resolved-address order (rule
// 2 generalized from pairs to sets); the park/notify edge nests only the
// record lock, never an object lock (the latch needs no object at all) —
// which is what lets Alert and the timer dequeue a poll waiter without the
// rule-3 try-lock dance.

#ifndef TAOS_SRC_THREADS_POLL_H_
#define TAOS_SRC_THREADS_POLL_H_

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "src/spec/state.h"
#include "src/threads/event.h"
#include "src/threads/thread_record.h"
#include "src/threads/wait_result.h"

namespace taos {

class Poll {
 public:
  static constexpr std::size_t kMaxWait = 16;

  Poll() = default;
  Poll(const Poll&) = delete;
  Poll& operator=(const Poll&) = delete;

  // REQUIRES e not already added, fewer than kMaxWait members. The caller
  // keeps every added Event alive across all waits on this Poll.
  void Add(Event& e);

  std::size_t size() const { return n_; }

  // All waits REQUIRE a non-empty wait set.

  // Blocks until some member is set; auto-reset members are consumed by the
  // grant. Returns the granted member's index (Add order).
  std::size_t WaitAny();

  struct AnyResult {
    std::size_t index;  // size() when result != kSatisfied
    WaitResult result;
  };
  // WaitAny with a deadline. A grant always beats a co-incident expiry;
  // a zero/negative timeout degenerates to a single scan.
  AnyResult WaitAnyFor(std::chrono::nanoseconds timeout);

  // Alertable WaitAny: raises Alerted if this thread is (or becomes)
  // alerted before a member is granted, consuming the alert.
  std::size_t AlertWaitAny();
  // Timed + alertable; kAlerted is reported, not thrown, mirroring
  // AlertWaitFor. An observed timeout never consumes a pending alert.
  AnyResult AlertWaitAnyFor(std::chrono::nanoseconds timeout);

  // Blocks until every member is simultaneously set, then consumes all
  // auto-reset members atomically (with respect to every locked consumer;
  // see the transient-pulse note in poll.cc's ScanAll).
  void WaitAll();
  WaitResult WaitAllFor(std::chrono::nanoseconds timeout);
  void AlertWaitAll();
  WaitResult AlertWaitAllFor(std::chrono::nanoseconds timeout);

 private:
  struct Outcome {
    WaitResult result;
    std::size_t index;
  };

  Outcome WaitInternal(bool all, bool alertable, bool timed,
                       std::uint64_t deadline_ns);
  Outcome TracedWait(ThreadRecord* self, bool all, bool alertable, bool timed,
                     std::uint64_t deadline_ns);
  std::size_t ScanAny(PollNode* nodes);
  bool ScanAll(PollNode* nodes, spec::ObjId* first_unset);
  void DeregisterAll(PollNode* nodes);
  spec::ObjIdSet WaitSetIds() const;

  Event* events_[kMaxWait] = {};
  std::size_t n_ = 0;
};

}  // namespace taos

#endif  // TAOS_SRC_THREADS_POLL_H_
