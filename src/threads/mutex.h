// Mutex: Acquire / Release.
//
// Specification (SRC Report 20):
//
//   TYPE Mutex = Thread INITIALLY NIL
//   ATOMIC PROCEDURE Acquire(VAR m: Mutex)
//     MODIFIES AT MOST [m]  WHEN m = NIL  ENSURES mpost = SELF
//   ATOMIC PROCEDURE Release(VAR m: Mutex)
//     REQUIRES m = SELF  MODIFIES AT MOST [m]  ENSURES mpost = NIL
//
// Implementation (faithful to the paper's): a mutex is a pair
// (Lock-bit, Queue). The user-code fast path is an inline test-and-set for
// Acquire and a clear for Release; the Nub slow paths enqueue the caller /
// unblock one queued thread under the global spin-lock. The design barges:
// a releasing thread makes one queued thread ready, but any thread may win
// the retried test-and-set first, so the spec deliberately does not say
// which blocked thread acquires next.
//
// Departures from the paper, documented in DESIGN.md:
//  - holder_ records the owning thread. The paper's implementation kept no
//    holder (clients complained the debugger could not show one); we keep it
//    to check the REQUIRES clause of Release and to support HolderForDebug().
//  - queue_len_ is an atomic mirror of the queue length so Release's
//    user-code "is the Queue non-empty?" test is a data-race-free load.
//  - the Queue is guarded by this mutex's own ObjLock rather than the global
//    Nub spin-lock (sharded slow paths; see nub.h for the discipline and the
//    TAOS_NUB_GLOBAL_LOCK fallback).

#ifndef TAOS_SRC_THREADS_MUTEX_H_
#define TAOS_SRC_THREADS_MUTEX_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>

#include "src/base/intrusive_queue.h"
#include "src/spec/action.h"
#include "src/spec/state.h"
#include "src/threads/nub.h"
#include "src/threads/thread_record.h"
#include "src/threads/wait_result.h"
#include "src/waitq/waitq.h"

namespace taos {

class Condition;

class Mutex {
 public:
  Mutex();
  ~Mutex();
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Acquire();

  // Single attempt; returns true on success. (Not in the paper's interface,
  // but implied by the user-code fast path; handy for tests.)
  bool TryAcquire();

  // Acquire with a deadline: kSatisfied with the mutex held, or kTimeout
  // (mutex not held) once `timeout` has elapsed. A zero or negative timeout
  // degenerates to a single TryAcquire. Timed acquires are not alertable
  // (kAlerted is impossible), matching Acquire. A release that grants this
  // thread the mutex always wins a race with the deadline: the grant is
  // kept, never converted into a timeout.
  WaitResult AcquireFor(std::chrono::nanoseconds timeout);

  void Release();

  // The thread currently holding the mutex, or kNil. Racy; for debuggers and
  // tests only — the spec exposes no such query to clients.
  spec::ThreadId HolderForDebug() const {
    return holder_.load(std::memory_order_relaxed);
  }

  spec::ObjId id() const { return id_; }

  // --- statistics (relaxed counters) ---
  std::uint64_t fast_acquires() const {
    return fast_acquires_.load(std::memory_order_relaxed);
  }
  std::uint64_t slow_acquires() const {
    return slow_acquires_.load(std::memory_order_relaxed);
  }
  void ResetStats() {
    fast_acquires_.store(0, std::memory_order_relaxed);
    slow_acquires_.store(0, std::memory_order_relaxed);
  }

 private:
  friend class Condition;
  friend class Timer;
  friend void AlertWait(Mutex& m, Condition& c);
  friend WaitResult AlertWaitFor(Mutex& m, Condition& c,
                                 std::chrono::nanoseconds timeout);

  // Nub subroutine for Acquire: enqueue, re-test the lock bit, de-schedule
  // if still held; retry the whole Acquire from the test-and-set.
  void NubAcquire(ThreadRecord* self);

  // NubAcquire on the waiter-queue substrate (TAOS_WAITQ): the enqueue is a
  // lock-free cell claim instead of an ObjLock-guarded list insert; the
  // claim-then-test ordering against Release's clear-then-scan is preserved.
  void WaitqAcquire(ThreadRecord* self);

  // Deadline-carrying slow paths (AcquireFor). Each parked episode arms the
  // process timer wheel (src/threads/timer.h); the timer dequeues an expired
  // waiter exactly as Alert dequeues an alertable one. Return false on
  // timeout.
  bool NubAcquireFor(ThreadRecord* self, std::uint64_t deadline_ns);
  bool WaitqAcquireFor(ThreadRecord* self, std::uint64_t deadline_ns);
  bool TracedAcquireFor(ThreadRecord* self, std::uint64_t deadline_ns);

  // Nub subroutine for Release: unblock one queued thread.
  void NubRelease();

  // Marks `self` as the holder (fast- and slow-path epilogue). The diag
  // owner stamp rides the same funnel: one predicted branch on the
  // uncontended path when diagnosis is off.
  void NoteAcquired(ThreadRecord* self) {
    holder_.store(self->id, std::memory_order_relaxed);
    if (obs::diag::Enabled()) [[unlikely]] {
      TAOS_CHAOS(kDiagOwnerStamp);
      obs::diag::StampOwner(id_, self->id);
    }
  }

  // Clears the holder (every Release path, traced included).
  void NoteReleased() {
    holder_.store(spec::kNil, std::memory_order_relaxed);
    if (obs::diag::Enabled()) [[unlikely]] {
      obs::diag::ClearOwner(id_);
    }
  }

  // Traced (spec-emitting) paths. `emit` is the action recorded when the
  // acquisition succeeds: plain Acquire, or the Resume half of Wait /
  // AlertWait (which must be emitted at the instant the mutex is regained).
  // When the successful action also touches a condition's state (the
  // AlertResume/RAISES case leaves c's pending-raise set), `co_lock` names
  // that condition's ObjLock; every attempt then takes both object locks in
  // NubGuard2 order. `at_success` runs just before the emission, with the
  // object lock(s) and self's record lock held, so the raise can atomically
  // leave the pending-raise set and the alerts set as part of the same
  // atomic action.
  void TracedAcquire(ThreadRecord* self, const spec::Action& emit);
  void TracedAcquire(ThreadRecord* self, const spec::Action& emit,
                     ObjLock* co_lock,
                     const std::function<void()>& at_success);
  void TracedRelease(ThreadRecord* self);

  // Core of TracedRelease; caller holds this mutex's ObjLock. Returns the
  // thread to unpark (after the lock is dropped), if any.
  ThreadRecord* TracedReleaseLocked(ThreadRecord* self, bool emit_release);

  std::atomic<std::uint32_t> bit_{0};  // the Lock-bit: 1 iff inside a
                                       // critical section
  ObjLock nub_lock_;                   // guards queue_ (the slow paths)
  IntrusiveQueue<ThreadRecord> queue_;  // classic backend
  waitq::WaitQueue wqueue_;             // waiter-queue backend (TAOS_WAITQ)
  std::atomic<std::int32_t> queue_len_{0};
  std::atomic<spec::ThreadId> holder_{spec::kNil};
  spec::ObjId id_;

  std::atomic<std::uint64_t> fast_acquires_{0};
  std::atomic<std::uint64_t> slow_acquires_{0};
};

}  // namespace taos

#endif  // TAOS_SRC_THREADS_MUTEX_H_
