// The outcome of a timed wait (AcquireFor / PFor / WaitFor / AlertWaitFor).
//
// The paper's primitives never time out: a blocked thread leaves its queue
// only by a grant (Release/V/Signal) or by an Alert. The timed variants add
// a third exit — expiry of a deadline — and report which of the three ended
// the wait. The precedence when exits race is fixed by the implementation:
// a grant always beats the timer (a timed wait that loses the expiry-vs-
// grant race never loses the grant), and an expiry observed by the waiter
// beats a pending alert (the alert flag is left set for the next alertable
// operation rather than silently consumed by a wait that reports kTimeout).

#ifndef TAOS_SRC_THREADS_WAIT_RESULT_H_
#define TAOS_SRC_THREADS_WAIT_RESULT_H_

namespace taos {

enum class WaitResult {
  kSatisfied,  // the wait ended by grant: the mutex/semaphore was acquired,
               // or the condition was signalled/broadcast
  kTimeout,    // the deadline expired first; the wait's postcondition is
               // whatever held before (the mutex stays unacquired, the
               // semaphore untaken — and for WaitFor, m is re-acquired)
  kAlerted,    // AlertWaitFor only: an Alert ended the wait; the alert flag
               // was consumed (the un-timed AlertWait would have raised)
};

inline const char* WaitResultName(WaitResult r) {
  switch (r) {
    case WaitResult::kSatisfied:
      return "satisfied";
    case WaitResult::kTimeout:
      return "timeout";
    case WaitResult::kAlerted:
      return "alerted";
  }
  return "?";
}

}  // namespace taos

#endif  // TAOS_SRC_THREADS_WAIT_RESULT_H_
