// Alerting: Alert / TestAlert / AlertWait / AlertP.
//
// Specification (SRC Report 20):
//
//   VAR alerts: SET OF Thread INITIALLY {}
//   EXCEPTION Alerted
//   ATOMIC PROCEDURE Alert(t)        ENSURES alertspost = insert(alerts, t)
//   ATOMIC PROCEDURE TestAlert() RETURNS (b)
//     ENSURES (b = (SELF IN alerts)) & (alertspost = delete(alerts, SELF))
//   ATOMIC PROCEDURE AlertP(VAR s) RAISES {Alerted}
//     RETURNS WHEN s = available   ENSURES spost = unavailable & UNCHANGED [alerts]
//     RAISES  WHEN SELF IN alerts  ENSURES alertspost = delete(alerts, SELF)
//                                          & UNCHANGED [s]
//   PROCEDURE AlertWait(VAR m, VAR c) RAISES {Alerted} =
//     COMPOSITION OF Enqueue; AlertResume END   REQUIRES m = SELF
//     ATOMIC ACTION Enqueue ENSURES cpost = insert(c, SELF) & mpost = NIL
//                                   & UNCHANGED [alerts]
//     ATOMIC ACTION AlertResume
//       RETURNS WHEN (m = NIL) & (SELF NOT-IN c)
//         ENSURES mpost = SELF & UNCHANGED [c, alerts]
//       RAISES Alerted WHEN (m = NIL) & (SELF IN alerts)
//         ENSURES mpost = SELF & cpost = delete(c, SELF)
//                 & alertspost = delete(alerts, SELF)
//
// The RETURNS and RAISES WHEN clauses are deliberately not disjoint: when
// both are satisfied the implementation may choose either outcome (the
// paper's released spec legitimized the implementation's nondeterminism).
//
// Alerting is a polite form of interrupt, used to implement timeouts and
// aborts: Alert(t) requests that thread t raise Alerted at its next
// alert-responsive point.

#ifndef TAOS_SRC_THREADS_ALERT_H_
#define TAOS_SRC_THREADS_ALERT_H_

#include <chrono>

#include "src/base/alerted.h"
#include "src/threads/condition.h"
#include "src/threads/mutex.h"
#include "src/threads/semaphore.h"
#include "src/threads/thread_record.h"
#include "src/threads/wait_result.h"

namespace taos {

// Requests that thread t raise Alerted. If t is blocked in AlertWait or
// AlertP it is unblocked; otherwise the request stays pending until t calls
// TestAlert, AlertWait or AlertP.
void Alert(ThreadHandle t);

// Returns whether an alert was pending for the calling thread, clearing it.
bool TestAlert();

// Like Condition::Wait, but may raise Alerted instead of returning. Either
// way the mutex is held again on exit from the procedure.
void AlertWait(Mutex& m, Condition& c);

// AlertWait with a deadline, reporting all three outcomes as a value
// instead of raising: kSatisfied (a Signal/Broadcast woke us), kTimeout
// (the deadline passed first), or kAlerted (an alert was delivered; the
// pending alert is consumed, but no Alerted is thrown — the caller decides
// what an alert means for a timed wait). On the kTimeout path a pending
// alert is deliberately NOT consumed: the timeout already happened, and the
// alert stays deliverable at the next alert-responsive point. The mutex is
// held again on return in every case. A nonpositive timeout returns
// kTimeout immediately without releasing m.
WaitResult AlertWaitFor(Mutex& m, Condition& c,
                        std::chrono::nanoseconds timeout);

// Like Semaphore::P, but may raise Alerted instead of returning (in which
// case the semaphore was not taken).
void AlertP(Semaphore& s);

}  // namespace taos

#endif  // TAOS_SRC_THREADS_ALERT_H_
