#include "src/threads/semaphore.h"

#include "src/base/chaos.h"
#include "src/base/check.h"
#include "src/obs/metrics.h"
#include "src/obs/recorder.h"
#include "src/spec/action.h"
#include "src/threads/nub.h"
#include "src/threads/timer.h"

namespace taos {

Semaphore::Semaphore() : id_(Nub::Get().NextObjId()) {}

Semaphore::~Semaphore() {
  TAOS_CHECK(queue_.Empty());
  TAOS_CHECK(wqueue_.DrainedForDebug());
}

void Semaphore::P() {
  obs::WithEvent(obs::Op::kP, id_, [&] {
    Nub& nub = Nub::Get();
    ThreadRecord* self = nub.Current();
    if (nub.tracing()) {
      obs::Inc(obs::Counter::kNubP);
      TracedP(self);
      return;
    }
    if (bit_.exchange(1, std::memory_order_acquire) == 0) {
      fast_ps_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(obs::Counter::kFastSemP);
      return;
    }
    NubP(self);
  });
}

bool Semaphore::TryP() {
  Nub& nub = Nub::Get();
  if (nub.tracing()) {
    ThreadRecord* self = nub.Current();
    NubGuard g(nub_lock_);
    if (bit_.load(std::memory_order_relaxed) != 0) {
      return false;
    }
    bit_.store(1, std::memory_order_relaxed);
    nub.EmitTraced(spec::MakeP(self->id, id_));
    return true;
  }
  if (bit_.exchange(1, std::memory_order_acquire) == 0) {
    fast_ps_.fetch_add(1, std::memory_order_relaxed);
    obs::Inc(obs::Counter::kFastSemP);
    return true;
  }
  return false;
}

WaitResult Semaphore::PFor(std::chrono::nanoseconds timeout) {
  WaitResult result = WaitResult::kSatisfied;
  obs::WithEvent(obs::Op::kP, id_, [&] {
    Nub& nub = Nub::Get();
    ThreadRecord* self = nub.Current();
    if (nub.tracing()) {
      obs::Inc(obs::Counter::kNubP);
      const std::uint64_t deadline =
          timeout.count() > 0 ? DeadlineAfter(timeout) : 0;
      result = TracedPFor(self, deadline) ? WaitResult::kSatisfied
                                          : WaitResult::kTimeout;
    } else if (bit_.exchange(1, std::memory_order_acquire) == 0) {
      // Fast path tried even with an expired deadline: PFor(0) is TryP with
      // a WaitResult.
      fast_ps_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(obs::Counter::kFastSemP);
    } else if (timeout.count() <= 0) {
      result = WaitResult::kTimeout;
    } else if (!NubPFor(self, DeadlineAfter(timeout))) {
      result = WaitResult::kTimeout;
    }
  });
  obs::Inc(result == WaitResult::kSatisfied
               ? obs::Counter::kTimedWaitSatisfied
               : obs::Counter::kTimedWaitTimeouts);
  return result;
}

void Semaphore::NubP(ThreadRecord* self) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  slow_ps_.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(obs::Counter::kNubP);
  if (nub.waitq_mode()) {
    WaitqP(self);
    return;
  }
  for (;;) {
    bool parked = false;
    {
      NubGuard g(nub_lock_);
      queue_.PushBack(self);
      queue_len_.fetch_add(1, std::memory_order_seq_cst);
      TAOS_CHAOS(kSemEnqueuedToTest);
      if (bit_.load(std::memory_order_seq_cst) != 0) {
        MarkBlocked(self, ThreadRecord::BlockKind::kSemaphore, this, id_,
                    &nub_lock_, /*alertable=*/false);
        parked = true;
      } else {
        TAOS_CHAOS(kSemBackout);
        queue_.Remove(self);
        queue_len_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    if (parked) {
      ParkBlocked(self);
    }
    TAOS_CHAOS(kSemWakeToRetry);
    if (bit_.exchange(1, std::memory_order_acquire) == 0) {
      return;
    }
    obs::Inc(obs::Counter::kLockBitRetries);
    if (parked) {
      obs::Inc(obs::Counter::kSpuriousWakeups);
    }
  }
}

// Identical in structure to Mutex::WaitqAcquire; see the commentary there.
void Semaphore::WaitqP(ThreadRecord* self) {
  for (;;) {
    bool parked = false;
    waitq::WaitCell* cell = wqueue_.Enqueue();
    queue_len_.fetch_add(1, std::memory_order_seq_cst);
    TAOS_CHAOS(kSemEnqueuedToTest);
    if (bit_.load(std::memory_order_seq_cst) != 0) {
      {
        SpinGuard tg(self->lock);
        parked = InstallBlockedLocked(self, cell,
                                      ThreadRecord::BlockKind::kSemaphore,
                                      this, id_, &nub_lock_, /*alertable=*/false);
      }
      if (parked) {
        ParkBlocked(self);
      }
      FinishWaitCell(self, cell);
    } else {
      TAOS_CHAOS(kSemBackout);
      if (cell->Cancel() == waitq::WaitCell::CancelOutcome::kCancelled) {
        queue_len_.fetch_sub(1, std::memory_order_relaxed);
      }
      waitq::WaitQueue::Detach(cell);
    }
    TAOS_CHAOS(kSemWakeToRetry);
    if (bit_.exchange(1, std::memory_order_acquire) == 0) {
      return;
    }
    obs::Inc(obs::Counter::kLockBitRetries);
    if (parked) {
      obs::Inc(obs::Counter::kSpuriousWakeups);
    }
  }
}

bool Semaphore::NubPFor(ThreadRecord* self, std::uint64_t deadline_ns) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  slow_ps_.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(obs::Counter::kNubP);
  if (nub.waitq_mode()) {
    return WaitqPFor(self, deadline_ns);
  }
  for (;;) {
    bool parked = false;
    std::uint64_t gen = 0;
    {
      NubGuard g(nub_lock_);
      queue_.PushBack(self);
      queue_len_.fetch_add(1, std::memory_order_seq_cst);
      TAOS_CHAOS(kSemEnqueuedToTest);
      if (bit_.load(std::memory_order_seq_cst) != 0) {
        gen = ++self->next_timer_gen;
        SpinGuard tg(self->lock);
        SetBlockedLocked(self, ThreadRecord::BlockKind::kSemaphore, this, id_,
                         &nub_lock_, /*alertable=*/false);
        PublishTimedLocked(self, gen);
        parked = true;
      } else {
        TAOS_CHAOS(kSemBackout);
        queue_.Remove(self);
        queue_len_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    if (parked) {
      Timer::Get().Arm(self, gen, deadline_ns);
      ParkBlocked(self);
      Timer::Get().Cancel(self, gen);
      TAOS_CHAOS(kSemTimedFinish);
    }
    const bool expired = parked && ConsumeTimeoutWoken(self);
    // Exchange FIRST, deadline second: a V's grant is never converted into
    // a timeout by a co-incident expiry.
    if (bit_.exchange(1, std::memory_order_acquire) == 0) {
      return true;
    }
    obs::Inc(obs::Counter::kLockBitRetries);
    if (parked) {
      obs::Inc(obs::Counter::kSpuriousWakeups);
    }
    if (expired || obs::NowNanos() >= deadline_ns) {
      return false;
    }
  }
}

// Identical in structure to Mutex::WaitqAcquireFor; see the commentary
// there.
bool Semaphore::WaitqPFor(ThreadRecord* self, std::uint64_t deadline_ns) {
  for (;;) {
    bool parked = false;
    waitq::WaitCell* cell = wqueue_.Enqueue();
    queue_len_.fetch_add(1, std::memory_order_seq_cst);
    TAOS_CHAOS(kSemEnqueuedToTest);
    if (bit_.load(std::memory_order_seq_cst) != 0) {
      std::uint64_t gen = 0;
      {
        SpinGuard tg(self->lock);
        parked = InstallBlockedLocked(self, cell,
                                      ThreadRecord::BlockKind::kSemaphore,
                                      this, id_, &nub_lock_, /*alertable=*/false);
        if (parked) {
          gen = ++self->next_timer_gen;
          PublishTimedLocked(self, gen);
        }
      }
      if (parked) {
        Timer::Get().Arm(self, gen, deadline_ns);
        ParkBlocked(self);
        Timer::Get().Cancel(self, gen);
        TAOS_CHAOS(kSemTimedFinish);
      }
      FinishWaitCell(self, cell);
    } else {
      TAOS_CHAOS(kSemBackout);
      if (cell->Cancel() == waitq::WaitCell::CancelOutcome::kCancelled) {
        queue_len_.fetch_sub(1, std::memory_order_relaxed);
      }
      waitq::WaitQueue::Detach(cell);
    }
    const bool expired = parked && ConsumeTimeoutWoken(self);
    if (bit_.exchange(1, std::memory_order_acquire) == 0) {
      return true;
    }
    obs::Inc(obs::Counter::kLockBitRetries);
    if (parked) {
      obs::Inc(obs::Counter::kSpuriousWakeups);
    }
    if (expired || obs::NowNanos() >= deadline_ns) {
      return false;
    }
  }
}

void Semaphore::V() {
  obs::WithEvent(obs::Op::kV, id_, [&] {
    Nub& nub = Nub::Get();
    if (nub.tracing()) {
      obs::Inc(obs::Counter::kNubV);
      TracedV(nub.Current());
      return;
    }
    bit_.store(0, std::memory_order_seq_cst);
    TAOS_CHAOS(kSemReleaseWindow);
    if (queue_len_.load(std::memory_order_seq_cst) > 0) {
      NubV();
    } else {
      obs::Inc(obs::Counter::kFastSemV);
    }
  });
}

void Semaphore::NubV() {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(obs::Counter::kNubV);
  waitq::Parker* unpark = nullptr;
  {
    NubGuard g(nub_lock_);
    if (nub.waitq_mode()) {
      const waitq::WaitQueue::Resumed r = wqueue_.ResumeOne();
      if (r.resumed) {
        queue_len_.fetch_sub(1, std::memory_order_relaxed);
        unpark = r.parker;  // null on an immediate grant
      }
    } else {
      ThreadRecord* wake = queue_.PopFront();
      if (wake != nullptr) {
        queue_len_.fetch_sub(1, std::memory_order_relaxed);
        MarkUnblocked(wake);
        unpark = &wake->park;
      }
    }
  }
  if (unpark != nullptr) {
    obs::Inc(obs::Counter::kHandoffs);
    unpark->Unpark();
  }
}

void Semaphore::TracedP(ThreadRecord* self) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    waitq::WaitCell* cell = nullptr;
    bool parked = false;
    {
      NubGuard g(nub_lock_);
      if (bit_.load(std::memory_order_relaxed) == 0) {
        bit_.store(1, std::memory_order_relaxed);
        nub.EmitTraced(spec::MakeP(self->id, id_));
        return;
      }
      if (nub.waitq_mode()) {
        cell = wqueue_.Enqueue();
        queue_len_.fetch_add(1, std::memory_order_relaxed);
        SpinGuard tg(self->lock);
        // Cannot fail: resumers hold this ObjLock, which we hold.
        TAOS_CHECK(InstallBlockedLocked(self, cell,
                                        ThreadRecord::BlockKind::kSemaphore,
                                        this, id_, &nub_lock_,
                                        /*alertable=*/false));
      } else {
        queue_.PushBack(self);
        queue_len_.fetch_add(1, std::memory_order_relaxed);
        MarkBlocked(self, ThreadRecord::BlockKind::kSemaphore, this, id_,
                    &nub_lock_, /*alertable=*/false);
      }
      parked = true;
    }
    if (parked) {
      ParkBlocked(self);
      if (cell != nullptr) {
        FinishWaitCell(self, cell);
      }
    }
  }
}

bool Semaphore::TracedPFor(ThreadRecord* self, std::uint64_t deadline_ns) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    waitq::WaitCell* cell = nullptr;
    bool parked = false;
    std::uint64_t gen = 0;
    {
      NubGuard g(nub_lock_);
      // Take-test before deadline-test: a grant beats a co-incident expiry.
      if (bit_.load(std::memory_order_relaxed) == 0) {
        bit_.store(1, std::memory_order_relaxed);
        SpinGuard tg(self->lock);
        nub.EmitTraced(spec::MakeP(self->id, id_));
        return true;
      }
      if (obs::NowNanos() >= deadline_ns) {
        // PFor/TIMEOUT: a no-op on s, one atomic action under the object
        // lock. Subsumes timeout_woken (round-up placement means an expiry
        // implies the deadline is behind us).
        SpinGuard tg(self->lock);
        nub.EmitTraced(spec::MakePTimeout(self->id, id_));
        return false;
      }
      gen = ++self->next_timer_gen;
      if (nub.waitq_mode()) {
        cell = wqueue_.Enqueue();
        queue_len_.fetch_add(1, std::memory_order_relaxed);
        SpinGuard tg(self->lock);
        // Cannot fail: resumers hold this ObjLock, which we hold.
        TAOS_CHECK(InstallBlockedLocked(self, cell,
                                        ThreadRecord::BlockKind::kSemaphore,
                                        this, id_, &nub_lock_,
                                        /*alertable=*/false));
        PublishTimedLocked(self, gen);
      } else {
        queue_.PushBack(self);
        queue_len_.fetch_add(1, std::memory_order_relaxed);
        SpinGuard tg(self->lock);
        SetBlockedLocked(self, ThreadRecord::BlockKind::kSemaphore, this, id_,
                         &nub_lock_, /*alertable=*/false);
        PublishTimedLocked(self, gen);
      }
      parked = true;
    }
    if (parked) {
      Timer::Get().Arm(self, gen, deadline_ns);
      ParkBlocked(self);
      Timer::Get().Cancel(self, gen);
      if (cell != nullptr) {
        FinishWaitCell(self, cell);
      }
      ConsumeTimeoutWoken(self);  // loop-top deadline check decides
    }
  }
}

void Semaphore::TracedV(ThreadRecord* self) {
  Nub& nub = Nub::Get();
  ThreadRecord* wake = nullptr;
  {
    NubGuard g(nub_lock_);
    bit_.store(0, std::memory_order_relaxed);
    nub.EmitTraced(spec::MakeV(self->id, id_));
    if (nub.waitq_mode()) {
      const waitq::WaitQueue::Resumed r = wqueue_.ResumeOne();
      if (r.resumed) {
        queue_len_.fetch_sub(1, std::memory_order_relaxed);
        wake = static_cast<ThreadRecord*>(r.tag);
        TAOS_CHECK(wake != nullptr);  // no immediate grants in traced mode
      }
    } else {
      wake = queue_.PopFront();
      if (wake != nullptr) {
        queue_len_.fetch_sub(1, std::memory_order_relaxed);
        MarkUnblocked(wake);
      }
    }
  }
  if (wake != nullptr) {
    obs::Inc(obs::Counter::kHandoffs);
    wake->park.Unpark();
  }
}

}  // namespace taos
