#include "src/threads/semaphore.h"

#include "src/base/check.h"
#include "src/obs/metrics.h"
#include "src/obs/recorder.h"
#include "src/spec/action.h"
#include "src/threads/nub.h"

namespace taos {

Semaphore::Semaphore() : id_(Nub::Get().NextObjId()) {}

Semaphore::~Semaphore() { TAOS_CHECK(queue_.Empty()); }

void Semaphore::P() {
  obs::WithEvent(obs::Op::kP, id_, [&] {
    Nub& nub = Nub::Get();
    ThreadRecord* self = nub.Current();
    if (nub.tracing()) {
      obs::Inc(obs::Counter::kNubP);
      TracedP(self);
      return;
    }
    if (bit_.exchange(1, std::memory_order_acquire) == 0) {
      fast_ps_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(obs::Counter::kFastSemP);
      return;
    }
    NubP(self);
  });
}

bool Semaphore::TryP() {
  Nub& nub = Nub::Get();
  if (nub.tracing()) {
    ThreadRecord* self = nub.Current();
    NubGuard g(nub_lock_);
    if (bit_.load(std::memory_order_relaxed) != 0) {
      return false;
    }
    bit_.store(1, std::memory_order_relaxed);
    nub.EmitTraced(spec::MakeP(self->id, id_));
    return true;
  }
  if (bit_.exchange(1, std::memory_order_acquire) == 0) {
    fast_ps_.fetch_add(1, std::memory_order_relaxed);
    obs::Inc(obs::Counter::kFastSemP);
    return true;
  }
  return false;
}

void Semaphore::NubP(ThreadRecord* self) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  slow_ps_.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(obs::Counter::kNubP);
  for (;;) {
    bool parked = false;
    {
      NubGuard g(nub_lock_);
      queue_.PushBack(self);
      queue_len_.fetch_add(1, std::memory_order_seq_cst);
      if (bit_.load(std::memory_order_seq_cst) != 0) {
        MarkBlocked(self, ThreadRecord::BlockKind::kSemaphore, this,
                    &nub_lock_, /*alertable=*/false);
        parked = true;
      } else {
        queue_.Remove(self);
        queue_len_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    if (parked) {
      ParkBlocked(self);
    }
    if (bit_.exchange(1, std::memory_order_acquire) == 0) {
      return;
    }
    obs::Inc(obs::Counter::kLockBitRetries);
    if (parked) {
      obs::Inc(obs::Counter::kSpuriousWakeups);
    }
  }
}

void Semaphore::V() {
  obs::WithEvent(obs::Op::kV, id_, [&] {
    Nub& nub = Nub::Get();
    if (nub.tracing()) {
      obs::Inc(obs::Counter::kNubV);
      TracedV(nub.Current());
      return;
    }
    bit_.store(0, std::memory_order_seq_cst);
    if (queue_len_.load(std::memory_order_seq_cst) > 0) {
      NubV();
    } else {
      obs::Inc(obs::Counter::kFastSemV);
    }
  });
}

void Semaphore::NubV() {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(obs::Counter::kNubV);
  ThreadRecord* wake = nullptr;
  {
    NubGuard g(nub_lock_);
    wake = queue_.PopFront();
    if (wake != nullptr) {
      queue_len_.fetch_sub(1, std::memory_order_relaxed);
      MarkUnblocked(wake);
    }
  }
  if (wake != nullptr) {
    obs::Inc(obs::Counter::kHandoffs);
    wake->park.release();
  }
}

void Semaphore::TracedP(ThreadRecord* self) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    bool parked = false;
    {
      NubGuard g(nub_lock_);
      if (bit_.load(std::memory_order_relaxed) == 0) {
        bit_.store(1, std::memory_order_relaxed);
        nub.EmitTraced(spec::MakeP(self->id, id_));
        return;
      }
      queue_.PushBack(self);
      queue_len_.fetch_add(1, std::memory_order_relaxed);
      MarkBlocked(self, ThreadRecord::BlockKind::kSemaphore, this, &nub_lock_,
                  /*alertable=*/false);
      parked = true;
    }
    if (parked) {
      ParkBlocked(self);
    }
  }
}

void Semaphore::TracedV(ThreadRecord* self) {
  Nub& nub = Nub::Get();
  ThreadRecord* wake = nullptr;
  {
    NubGuard g(nub_lock_);
    bit_.store(0, std::memory_order_relaxed);
    nub.EmitTraced(spec::MakeV(self->id, id_));
    wake = queue_.PopFront();
    if (wake != nullptr) {
      queue_len_.fetch_sub(1, std::memory_order_relaxed);
      MarkUnblocked(wake);
    }
  }
  if (wake != nullptr) {
    obs::Inc(obs::Counter::kHandoffs);
    wake->park.release();
  }
}

}  // namespace taos
