// The Nub's deadline subsystem: a hierarchical timing wheel driven by one
// timer thread, serving every timed wait in the process.
//
// The paper's Nub has no timeouts; the Taos interface above it did (the
// WaitWithTimeout idiom in src/workload built one from a watchdog thread per
// call). This subsystem makes deadlines first-class instead: a timed waiter
// parks exactly like an un-timed one, and the timer thread cancels it on
// expiry the same way Alert(t) cancels an alertable waiter — under the
// record lock, through the published blocking state (the classic backend's
// intrusive-queue removal, or the waitq backend's one-CAS cell cancel). The
// expiry-vs-grant race is therefore arbitrated by machinery that already
// exists and is already model-checked: whoever dequeues the waiter first
// wins, and a timed wait that loses the expiry-vs-grant race keeps the
// grant.
//
// Arming protocol (the waiter's side):
//   1. Under the record lock, while publishing the blocked state, the waiter
//      also publishes `timed = true`, a fresh `timer_gen`, and clears
//      `timeout_woken`.
//   2. After dropping every lock (and before parking), it calls
//      Arm(rec, gen, deadline). The parker's permit discipline makes the
//      order safe: an expiry or grant that lands before the park just
//      deposits the permit early.
//   3. After waking it always calls Cancel(rec, gen), then reads
//      `timeout_woken` under the record lock to learn whether the timer was
//      what woke it.
// A stale expiry (the waiter was granted, woke, maybe even re-blocked)
// validates against `timed`/`timer_gen`/`block_kind` under the record lock
// and becomes a no-op. `gen` values are per-thread and never reused, so the
// validation cannot be fooled by an ABA on the record's blocking state.
//
// The wheel: kLevels levels of kSlots slots, tick = 2^kTickShift ns
// (~262 us). Deadlines are placed at their tick rounded UP, so the wheel
// never fires early; far-future deadlines are clamped into the top level and
// re-placed as cascades bring them closer. The timer thread sleeps on its
// own Parker until the earliest due tick (or forever when the wheel is
// empty) and is unparked early when an Arm installs an earlier deadline.
//
// Lock ordering: the wheel lock is a leaf on the arming side (Arm and
// Cancel are called with no other lock held). The timer thread collects due
// entries under the wheel lock into a local batch, releases it, and only
// then runs the cancellation protocol (record lock, then TRY-acquire of the
// object lock exactly as in Alert — rule 3 in nub.h), so the wheel lock
// never nests with the record or object locks in either direction.

#ifndef TAOS_SRC_THREADS_TIMER_H_
#define TAOS_SRC_THREADS_TIMER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

#include "src/base/spinlock.h"
#include "src/obs/metrics.h"
#include "src/threads/thread_record.h"
#include "src/waitq/parker.h"

namespace taos {

// Converts a (positive) relative timeout into a deadline on the
// obs::NowNanos timeline, saturating instead of wrapping for far-future
// requests.
inline std::uint64_t DeadlineAfter(std::chrono::nanoseconds timeout) {
  const std::uint64_t now = obs::NowNanos();
  const std::uint64_t delta = static_cast<std::uint64_t>(timeout.count());
  const std::uint64_t deadline = now + delta;
  return deadline < now ? std::numeric_limits<std::uint64_t>::max() : deadline;
}

class Timer {
 public:
  // The process-wide timer, starting its thread on first use. Intentionally
  // leaked, like the Nub: the detached timer thread may still be running at
  // process exit.
  static Timer& Get();

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  // Inserts rec's deadline (obs::NowNanos timeline) into the wheel. The
  // caller must have published rec->timed / rec->timer_gen == gen under the
  // record lock first, and must hold no locks here. A deadline already in
  // the past fires at the next tick — never synchronously in the caller.
  void Arm(ThreadRecord* rec, std::uint64_t gen, std::uint64_t deadline_ns);

  // Removes the deadline if generation `gen` is still armed; a no-op after
  // the wheel already fired it. Every timed wait calls this once on the way
  // out, whatever woke it.
  void Cancel(ThreadRecord* rec, std::uint64_t gen);

  // Racy snapshot for tests.
  std::uint64_t ArmedForDebug();

  // The instance if Get() has ever run, else nullptr — without starting the
  // timer thread as a side effect. For Nub::SetLockBackend's quiesce.
  static Timer* InstanceIfStarted();

  // Parks the timer thread at a point where it holds no SpinLock and will
  // acquire none until resumed. SetBackend's quiescence contract covers
  // every lock a caller can drain by joining its own threads; the detached
  // timer thread is the one holder nobody can join — it takes the wheel
  // lock on every tick and record/object locks during expiry — so a
  // process-wide backend switch must bracket itself with this pair.
  // In-flight expiry batches drain before the pause takes effect.
  void PauseForBackendSwitch();
  void ResumeAfterBackendSwitch();

 private:
  // tick = 2^18 ns ~ 262 us; 4 levels of 64 slots cover ~4.7 days, and
  // anything farther is clamped into the top level (re-placed on cascade).
  static constexpr int kTickShift = 18;
  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;
  static constexpr int kLevels = 4;

  struct Expiry {
    ThreadRecord* rec;
    std::uint64_t gen;
    std::uint64_t deadline_ns;
  };

  Timer();

  static std::uint64_t TickOf(std::uint64_t deadline_ns) {
    // Round UP: the slot's tick boundary is at or after the deadline, so
    // processing the slot can never fire an entry early.
    return (deadline_ns >> kTickShift) +
           ((deadline_ns & ((1ull << kTickShift) - 1)) != 0 ? 1 : 0);
  }

  void ThreadMain();

  // Wheel manipulation; all require lock_ held.
  void AddLocked(TimerNode* n);
  void UnlinkLocked(TimerNode* n);
  void AdvanceLocked(std::uint64_t now_ns, std::vector<Expiry>* out);
  void CascadeLocked(int level, std::vector<Expiry>* out);
  void CollectSlotLocked(TimerNode* sentinel, int level,
                         std::vector<Expiry>* out);
  // Earliest wake-up time (ns) the thread must sleep until, or 0 for
  // "forever" (empty wheel).
  std::uint64_t NextWakeNsLocked() const;

  // Runs the cancellation protocol for one fired entry (no wheel lock
  // held): validate under the record lock, dequeue by the same rules as
  // Alert, set timeout_woken, unpark.
  void ExpireEntry(const Expiry& e);

  SpinLock lock_;
  TimerNode slots_[kLevels][kSlots];  // circular-list sentinels
  int counts_[kLevels] = {};
  std::uint64_t total_ = 0;
  std::uint64_t current_tick_ = 0;
  // The wake-up time the timer thread last committed to sleep until:
  // 0 while it is awake (no unpark needed — it will recompute), UINT64_MAX
  // while sleeping on an empty wheel. Guarded by lock_.
  std::uint64_t wake_target_ns_ = 0;

  waitq::Parker park_;

  // The backend-switch gate. Checked at the top of ThreadMain's loop, where
  // the thread holds no SpinLock; std::mutex + condvar on purpose — the
  // gate must not ride the very substrate being switched.
  std::mutex pause_mu_;
  std::condition_variable pause_cv_;
  bool pause_requested_ = false;
  bool paused_ = false;
};

}  // namespace taos

#endif  // TAOS_SRC_THREADS_TIMER_H_
