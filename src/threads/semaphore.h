// Binary semaphores: P / V.
//
// Specification (SRC Report 20):
//
//   TYPE Semaphore = (available, unavailable) INITIALLY available
//   ATOMIC PROCEDURE P(VAR s)  MODIFIES AT MOST [s]
//     WHEN s = available  ENSURES spost = unavailable
//   ATOMIC PROCEDURE V(VAR s)  MODIFIES AT MOST [s]
//     ENSURES spost = available
//
// "The implementation of semaphores is identical to mutexes: P is the same
// as Acquire and V is the same as Release" — but the types are distinct:
// there is no notion of a thread holding a semaphore and no precondition on
// V, so P and V need not be textually linked. Semaphores are the primitive
// for synchronizing with interrupt routines, which cannot use mutexes (the
// interrupt may have pre-empted a thread inside the critical section).

#ifndef TAOS_SRC_THREADS_SEMAPHORE_H_
#define TAOS_SRC_THREADS_SEMAPHORE_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "src/base/intrusive_queue.h"
#include "src/spec/state.h"
#include "src/threads/nub.h"
#include "src/threads/thread_record.h"
#include "src/threads/wait_result.h"
#include "src/waitq/waitq.h"

namespace taos {

class Semaphore {
 public:
  Semaphore();
  ~Semaphore();
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  // Blocks until the semaphore is available, then atomically makes it
  // unavailable.
  void P();

  // Single attempt; returns true if the semaphore was taken.
  bool TryP();

  // P with a deadline: kSatisfied with the semaphore taken, or kTimeout
  // (not taken) once `timeout` has elapsed. A zero or negative timeout
  // degenerates to a single TryP. Not alertable — AlertP is the alertable
  // variant; kAlerted is impossible here. A V that grants this thread
  // always wins a race with the deadline.
  WaitResult PFor(std::chrono::nanoseconds timeout);

  // Makes the semaphore available. Safe to call from any thread — including
  // one acting as an interrupt routine — with no precondition.
  void V();

  spec::ObjId id() const { return id_; }

  // Racy snapshot for tests/debuggers.
  bool AvailableForDebug() const {
    return bit_.load(std::memory_order_relaxed) == 0;
  }

  // --- statistics (relaxed counters) ---
  std::uint64_t fast_ps() const {
    return fast_ps_.load(std::memory_order_relaxed);
  }
  std::uint64_t slow_ps() const {
    return slow_ps_.load(std::memory_order_relaxed);
  }
  void ResetStats() {
    fast_ps_.store(0, std::memory_order_relaxed);
    slow_ps_.store(0, std::memory_order_relaxed);
  }

 private:
  friend class Timer;
  friend void Alert(ThreadHandle t);
  friend void AlertP(Semaphore& s);

  void NubP(ThreadRecord* self);
  void WaitqP(ThreadRecord* self);  // NubP on the TAOS_WAITQ substrate
  void NubV();
  void TracedP(ThreadRecord* self);
  void TracedV(ThreadRecord* self);

  // Deadline-carrying slow paths (PFor); see Mutex::NubAcquireFor, whose
  // structure these mirror. Return false on timeout.
  bool NubPFor(ThreadRecord* self, std::uint64_t deadline_ns);
  bool WaitqPFor(ThreadRecord* self, std::uint64_t deadline_ns);
  bool TracedPFor(ThreadRecord* self, std::uint64_t deadline_ns);

  std::atomic<std::uint32_t> bit_{0};   // 1 iff unavailable
  ObjLock nub_lock_;                    // guards queue_ (the slow paths)
  IntrusiveQueue<ThreadRecord> queue_;  // classic backend
  waitq::WaitQueue wqueue_;             // waiter-queue backend (TAOS_WAITQ)
  std::atomic<std::int32_t> queue_len_{0};
  spec::ObjId id_;

  std::atomic<std::uint64_t> fast_ps_{0};
  std::atomic<std::uint64_t> slow_ps_{0};
};

}  // namespace taos

#endif  // TAOS_SRC_THREADS_SEMAPHORE_H_
