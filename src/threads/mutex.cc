#include "src/threads/mutex.h"

#include "src/base/chaos.h"
#include "src/base/check.h"
#include "src/obs/metrics.h"
#include "src/obs/recorder.h"
#include "src/spec/action.h"
#include "src/threads/nub.h"
#include "src/threads/timer.h"

namespace taos {

Mutex::Mutex() : id_(Nub::Get().NextObjId()) {}

Mutex::~Mutex() {
  TAOS_CHECK(queue_.Empty());
  TAOS_CHECK(wqueue_.DrainedForDebug());
  TAOS_CHECK(bit_.load(std::memory_order_relaxed) == 0);
}

void Mutex::Acquire() {
  obs::WithEvent(obs::Op::kAcquire, id_, [&] {
    Nub& nub = Nub::Get();
    ThreadRecord* self = nub.Current();
    if (nub.tracing()) {
      obs::Inc(obs::Counter::kNubAcquire);
      TracedAcquire(self, spec::MakeAcquire(self->id, id_));
      return;
    }
    // User-code fast path: one test-and-set when there is no contention.
    if (bit_.exchange(1, std::memory_order_acquire) == 0) {
      fast_acquires_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(obs::Counter::kFastMutexAcquire);
      NoteAcquired(self);
      return;
    }
    NubAcquire(self);
    NoteAcquired(self);
  });
}

bool Mutex::TryAcquire() {
  Nub& nub = Nub::Get();
  ThreadRecord* self = nub.Current();
  if (nub.tracing()) {
    NubGuard g(nub_lock_);
    if (bit_.load(std::memory_order_relaxed) != 0) {
      return false;
    }
    bit_.store(1, std::memory_order_relaxed);
    NoteAcquired(self);
    nub.EmitTraced(spec::MakeAcquire(self->id, id_));
    return true;
  }
  if (bit_.exchange(1, std::memory_order_acquire) == 0) {
    fast_acquires_.fetch_add(1, std::memory_order_relaxed);
    obs::Inc(obs::Counter::kFastMutexAcquire);
    NoteAcquired(self);
    return true;
  }
  return false;
}

WaitResult Mutex::AcquireFor(std::chrono::nanoseconds timeout) {
  WaitResult result = WaitResult::kSatisfied;
  obs::WithEvent(obs::Op::kAcquire, id_, [&] {
    Nub& nub = Nub::Get();
    ThreadRecord* self = nub.Current();
    if (nub.tracing()) {
      obs::Inc(obs::Counter::kNubAcquire);
      // deadline 0 is always in the past, so a nonpositive timeout becomes
      // one locked attempt followed by the timeout action.
      const std::uint64_t deadline =
          timeout.count() > 0 ? DeadlineAfter(timeout) : 0;
      result = TracedAcquireFor(self, deadline) ? WaitResult::kSatisfied
                                                : WaitResult::kTimeout;
    } else if (bit_.exchange(1, std::memory_order_acquire) == 0) {
      // Same user-code fast path as Acquire — tried even with an expired
      // deadline, so AcquireFor(0) is TryAcquire with a WaitResult.
      fast_acquires_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(obs::Counter::kFastMutexAcquire);
      NoteAcquired(self);
    } else if (timeout.count() <= 0) {
      result = WaitResult::kTimeout;
    } else if (NubAcquireFor(self, DeadlineAfter(timeout))) {
      NoteAcquired(self);
    } else {
      result = WaitResult::kTimeout;
    }
  });
  obs::Inc(result == WaitResult::kSatisfied
               ? obs::Counter::kTimedWaitSatisfied
               : obs::Counter::kTimedWaitTimeouts);
  return result;
}

void Mutex::NubAcquire(ThreadRecord* self) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  slow_acquires_.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(obs::Counter::kNubAcquire);
  if (nub.waitq_mode()) {
    WaitqAcquire(self);
    return;
  }
  for (;;) {
    bool parked = false;
    {
      NubGuard g(nub_lock_);
      // Add the calling thread to the Queue, then test the Lock-bit again.
      queue_.PushBack(self);
      queue_len_.fetch_add(1, std::memory_order_seq_cst);
      TAOS_CHAOS(kMutexEnqueuedToTest);
      if (bit_.load(std::memory_order_seq_cst) != 0) {
        // Still held: de-schedule this thread. It stays queued; Release will
        // make it ready.
        MarkBlocked(self, ThreadRecord::BlockKind::kMutex, this, id_, &nub_lock_,
                    /*alertable=*/false);
        parked = true;
      } else {
        // Released in the meantime: back out and retry the whole Acquire.
        TAOS_CHAOS(kMutexBackout);
        queue_.Remove(self);
        queue_len_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    if (parked) {
      ParkBlocked(self);
    }
    TAOS_CHAOS(kMutexWakeToRetry);
    // Retry the entire Acquire operation, beginning at the test-and-set.
    // Another thread may barge in and win; the spec does not say which
    // blocked thread acquires next.
    if (bit_.exchange(1, std::memory_order_acquire) == 0) {
      return;
    }
    obs::Inc(obs::Counter::kLockBitRetries);
    if (parked) {
      // Unparked, but a barging thread won the retried test-and-set.
      obs::Inc(obs::Counter::kSpuriousWakeups);
    }
  }
}

void Mutex::WaitqAcquire(ThreadRecord* self) {
  for (;;) {
    bool parked = false;
    // Claim a cell (lock-free), publish the queue length, then re-test the
    // Lock-bit. The claim-then-test here against Release's clear-then-scan
    // is the same Dekker pairing as the classic backend's
    // enqueue-then-test; all four accesses are seq_cst.
    waitq::WaitCell* cell = wqueue_.Enqueue();
    queue_len_.fetch_add(1, std::memory_order_seq_cst);
    TAOS_CHAOS(kMutexEnqueuedToTest);
    if (bit_.load(std::memory_order_seq_cst) != 0) {
      {
        SpinGuard tg(self->lock);
        parked = InstallBlockedLocked(self, cell,
                                      ThreadRecord::BlockKind::kMutex, this, id_,
                                      &nub_lock_, /*alertable=*/false);
      }
      if (parked) {
        ParkBlocked(self);
      }
      // Install lost only to a resume (mutex waits are not alertable), so
      // either way the cell was granted and the resumer decremented
      // queue_len_.
      FinishWaitCell(self, cell);
    } else {
      // Released in the meantime: withdraw the claim and retry. If a racing
      // Release already granted the cell, the grant stands in for the
      // unpark this thread no longer needs (queue_len_ then was decremented
      // by the resumer).
      TAOS_CHAOS(kMutexBackout);
      if (cell->Cancel() == waitq::WaitCell::CancelOutcome::kCancelled) {
        queue_len_.fetch_sub(1, std::memory_order_relaxed);
      }
      waitq::WaitQueue::Detach(cell);
    }
    TAOS_CHAOS(kMutexWakeToRetry);
    // Retry the entire Acquire operation, beginning at the test-and-set;
    // barging is possible exactly as in the classic backend.
    if (bit_.exchange(1, std::memory_order_acquire) == 0) {
      return;
    }
    obs::Inc(obs::Counter::kLockBitRetries);
    if (parked) {
      obs::Inc(obs::Counter::kSpuriousWakeups);
    }
  }
}

bool Mutex::NubAcquireFor(ThreadRecord* self, std::uint64_t deadline_ns) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  slow_acquires_.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(obs::Counter::kNubAcquire);
  if (nub.waitq_mode()) {
    return WaitqAcquireFor(self, deadline_ns);
  }
  for (;;) {
    bool parked = false;
    std::uint64_t gen = 0;
    {
      NubGuard g(nub_lock_);
      queue_.PushBack(self);
      queue_len_.fetch_add(1, std::memory_order_seq_cst);
      TAOS_CHAOS(kMutexEnqueuedToTest);
      if (bit_.load(std::memory_order_seq_cst) != 0) {
        gen = ++self->next_timer_gen;
        SpinGuard tg(self->lock);
        SetBlockedLocked(self, ThreadRecord::BlockKind::kMutex, this, id_,
                         &nub_lock_, /*alertable=*/false);
        PublishTimedLocked(self, gen);
        parked = true;
      } else {
        TAOS_CHAOS(kMutexBackout);
        queue_.Remove(self);
        queue_len_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    if (parked) {
      // Arm outside every lock (the wheel lock is a leaf); the parker's
      // permit absorbs an expiry or grant that lands before the park.
      Timer::Get().Arm(self, gen, deadline_ns);
      ParkBlocked(self);
      Timer::Get().Cancel(self, gen);
      TAOS_CHAOS(kMutexTimedFinish);
    }
    const bool expired = parked && ConsumeTimeoutWoken(self);
    // Exchange FIRST, deadline second: a wake delivered because the mutex
    // was released must never be thrown away on a co-incident expiry.
    if (bit_.exchange(1, std::memory_order_acquire) == 0) {
      return true;
    }
    obs::Inc(obs::Counter::kLockBitRetries);
    if (parked) {
      obs::Inc(obs::Counter::kSpuriousWakeups);
    }
    if (expired || obs::NowNanos() >= deadline_ns) {
      // Timed out (or unparked by a grant, barged, and found the deadline
      // gone). Whoever dequeued this record — timer or releaser — already
      // removed it from the queue; there is nothing to back out.
      return false;
    }
  }
}

bool Mutex::WaitqAcquireFor(ThreadRecord* self, std::uint64_t deadline_ns) {
  for (;;) {
    bool parked = false;
    waitq::WaitCell* cell = wqueue_.Enqueue();
    queue_len_.fetch_add(1, std::memory_order_seq_cst);
    TAOS_CHAOS(kMutexEnqueuedToTest);
    if (bit_.load(std::memory_order_seq_cst) != 0) {
      std::uint64_t gen = 0;
      {
        SpinGuard tg(self->lock);
        parked = InstallBlockedLocked(self, cell,
                                      ThreadRecord::BlockKind::kMutex, this, id_,
                                      &nub_lock_, /*alertable=*/false);
        if (parked) {
          gen = ++self->next_timer_gen;
          PublishTimedLocked(self, gen);
        }
      }
      if (parked) {
        Timer::Get().Arm(self, gen, deadline_ns);
        ParkBlocked(self);
        Timer::Get().Cancel(self, gen);
        TAOS_CHAOS(kMutexTimedFinish);
      }
      FinishWaitCell(self, cell);
    } else {
      TAOS_CHAOS(kMutexBackout);
      if (cell->Cancel() == waitq::WaitCell::CancelOutcome::kCancelled) {
        queue_len_.fetch_sub(1, std::memory_order_relaxed);
      }
      waitq::WaitQueue::Detach(cell);
    }
    const bool expired = parked && ConsumeTimeoutWoken(self);
    if (bit_.exchange(1, std::memory_order_acquire) == 0) {
      return true;
    }
    obs::Inc(obs::Counter::kLockBitRetries);
    if (parked) {
      obs::Inc(obs::Counter::kSpuriousWakeups);
    }
    if (expired || obs::NowNanos() >= deadline_ns) {
      return false;
    }
  }
}

void Mutex::Release() {
  obs::WithEvent(obs::Op::kRelease, id_, [&] {
    Nub& nub = Nub::Get();
    ThreadRecord* self = nub.Current();
    // REQUIRES m = SELF. (Checked here as a library extension; the paper's
    // implementation trusted the caller.)
    TAOS_CHECK(holder_.load(std::memory_order_relaxed) == self->id);
    if (nub.tracing()) {
      obs::Inc(obs::Counter::kNubRelease);
      TracedRelease(self);
      return;
    }
    NoteReleased();
    // User code: clear the Lock-bit; call the Nub only if the Queue is
    // non-empty. The seq_cst store/load pair below pairs with the
    // enqueue-then-test in NubAcquire so that at least one side sees the
    // other (no thread is left parked with the mutex free).
    bit_.store(0, std::memory_order_seq_cst);
    TAOS_CHAOS(kMutexReleaseWindow);
    if (queue_len_.load(std::memory_order_seq_cst) > 0) {
      NubRelease();
    } else {
      obs::Inc(obs::Counter::kFastMutexRelease);
    }
  });
}

void Mutex::NubRelease() {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(obs::Counter::kNubRelease);
  waitq::Parker* unpark = nullptr;
  {
    NubGuard g(nub_lock_);
    if (nub.waitq_mode()) {
      const waitq::WaitQueue::Resumed r = wqueue_.ResumeOne();
      if (r.resumed) {
        queue_len_.fetch_sub(1, std::memory_order_relaxed);
        // r.parker is null on an immediate grant (the claimant had not
        // installed yet and proceeds without parking).
        unpark = r.parker;
      }
    } else {
      ThreadRecord* wake = queue_.PopFront();
      if (wake != nullptr) {
        queue_len_.fetch_sub(1, std::memory_order_relaxed);
        MarkUnblocked(wake);
        unpark = &wake->park;
      }
    }
  }
  if (unpark != nullptr) {
    // Add it to the ready pool: here, hand its processor back by unparking.
    obs::Inc(obs::Counter::kHandoffs);
    unpark->Unpark();
  }
}

void Mutex::TracedAcquire(ThreadRecord* self, const spec::Action& emit) {
  TracedAcquire(self, emit, nullptr, nullptr);
}

void Mutex::TracedAcquire(ThreadRecord* self, const spec::Action& emit,
                          ObjLock* co_lock,
                          const std::function<void()>& at_success) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    waitq::WaitCell* cell = nullptr;
    bool parked = false;
    {
      NubGuard2 g(nub_lock_, co_lock);
      if (bit_.load(std::memory_order_relaxed) == 0) {
        bit_.store(1, std::memory_order_relaxed);
        NoteAcquired(self);
        // Self's record lock serializes the emitted action against Alert's
        // (at_success may read and clear the alert flag).
        SpinGuard tg(self->lock);
        if (at_success) {
          at_success();
        }
        nub.EmitTraced(emit);
        return;
      }
      if (nub.waitq_mode()) {
        cell = wqueue_.Enqueue();
        queue_len_.fetch_add(1, std::memory_order_relaxed);
        SpinGuard tg(self->lock);
        // Cannot fail: resumers hold this ObjLock, which we hold.
        TAOS_CHECK(InstallBlockedLocked(self, cell,
                                        ThreadRecord::BlockKind::kMutex, this, id_,
                                        &nub_lock_, /*alertable=*/false));
      } else {
        queue_.PushBack(self);
        queue_len_.fetch_add(1, std::memory_order_relaxed);
        MarkBlocked(self, ThreadRecord::BlockKind::kMutex, this, id_, &nub_lock_,
                    /*alertable=*/false);
      }
      parked = true;
    }
    if (parked) {
      ParkBlocked(self);
      if (cell != nullptr) {
        FinishWaitCell(self, cell);
      }
    }
  }
}

bool Mutex::TracedAcquireFor(ThreadRecord* self, std::uint64_t deadline_ns) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    waitq::WaitCell* cell = nullptr;
    bool parked = false;
    std::uint64_t gen = 0;
    {
      NubGuard g(nub_lock_);
      // The acquire test comes before the deadline test, so a grant always
      // beats a co-incident expiry.
      if (bit_.load(std::memory_order_relaxed) == 0) {
        bit_.store(1, std::memory_order_relaxed);
        NoteAcquired(self);
        SpinGuard tg(self->lock);
        nub.EmitTraced(spec::MakeAcquire(self->id, id_));
        return true;
      }
      if (obs::NowNanos() >= deadline_ns) {
        // Deadline passed with the mutex still held: the spec's
        // AcquireFor/TIMEOUT action, a no-op on m, emitted as one atomic
        // action under the object lock. This check subsumes timeout_woken —
        // an expiry implies the deadline is behind us (round-up placement).
        SpinGuard tg(self->lock);
        nub.EmitTraced(spec::MakeAcquireTimeout(self->id, id_));
        return false;
      }
      gen = ++self->next_timer_gen;
      if (nub.waitq_mode()) {
        cell = wqueue_.Enqueue();
        queue_len_.fetch_add(1, std::memory_order_relaxed);
        SpinGuard tg(self->lock);
        // Cannot fail: resumers hold this ObjLock, which we hold.
        TAOS_CHECK(InstallBlockedLocked(self, cell,
                                        ThreadRecord::BlockKind::kMutex, this, id_,
                                        &nub_lock_, /*alertable=*/false));
        PublishTimedLocked(self, gen);
      } else {
        queue_.PushBack(self);
        queue_len_.fetch_add(1, std::memory_order_relaxed);
        SpinGuard tg(self->lock);
        SetBlockedLocked(self, ThreadRecord::BlockKind::kMutex, this, id_,
                         &nub_lock_, /*alertable=*/false);
        PublishTimedLocked(self, gen);
      }
      parked = true;
    }
    if (parked) {
      Timer::Get().Arm(self, gen, deadline_ns);
      ParkBlocked(self);
      Timer::Get().Cancel(self, gen);
      if (cell != nullptr) {
        FinishWaitCell(self, cell);
      }
      ConsumeTimeoutWoken(self);  // loop-top deadline check decides
    }
  }
}

void Mutex::TracedRelease(ThreadRecord* self) {
  ThreadRecord* wake = nullptr;
  {
    NubGuard g(nub_lock_);
    wake = TracedReleaseLocked(self, /*emit_release=*/true);
  }
  if (wake != nullptr) {
    obs::Inc(obs::Counter::kHandoffs);
    wake->park.Unpark();
  }
}

ThreadRecord* Mutex::TracedReleaseLocked(ThreadRecord* self,
                                         bool emit_release) {
  Nub& nub = Nub::Get();
  TAOS_CHECK(holder_.load(std::memory_order_relaxed) == self->id);
  NoteReleased();
  bit_.store(0, std::memory_order_relaxed);
  if (emit_release) {
    nub.EmitTraced(spec::MakeRelease(self->id, id_));
  }
  ThreadRecord* wake = nullptr;
  if (nub.waitq_mode()) {
    const waitq::WaitQueue::Resumed r = wqueue_.ResumeOne();
    if (r.resumed) {
      queue_len_.fetch_sub(1, std::memory_order_relaxed);
      // Immediate grants are impossible in traced mode (install happens
      // under this ObjLock), so the tag is always a published record. The
      // waiter unblocks itself in FinishWaitCell.
      wake = static_cast<ThreadRecord*>(r.tag);
      TAOS_CHECK(wake != nullptr);
    }
  } else {
    wake = queue_.PopFront();
    if (wake != nullptr) {
      queue_len_.fetch_sub(1, std::memory_order_relaxed);
      MarkUnblocked(wake);
    }
  }
  return wake;
}

}  // namespace taos
