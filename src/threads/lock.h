// The LOCK clause.
//
// Modula-2+ provides:   LOCK e DO statement-sequence END
// which expands to:     LET m = e; Acquire(m);
//                       TRY statement-sequence FINALLY Release(m) END
//
// In C++ a scoped RAII guard gives exactly the TRY...FINALLY guarantee:
// Release runs whether the block exits normally or via an exception
// (including Alerted). Other uses of bare Acquire/Release are discouraged,
// as in the paper.

#ifndef TAOS_SRC_THREADS_LOCK_H_
#define TAOS_SRC_THREADS_LOCK_H_

#include "src/threads/mutex.h"

namespace taos {

class Lock {
 public:
  explicit Lock(Mutex& m) : m_(m) { m_.Acquire(); }
  ~Lock() { m_.Release(); }

  Lock(const Lock&) = delete;
  Lock& operator=(const Lock&) = delete;

 private:
  Mutex& m_;
};

}  // namespace taos

#endif  // TAOS_SRC_THREADS_LOCK_H_
