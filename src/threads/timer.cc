#include "src/threads/timer.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <thread>

#include "src/base/chaos.h"
#include "src/base/check.h"
#include "src/obs/metrics.h"
#include "src/obs/recorder.h"
#include "src/threads/condition.h"
#include "src/threads/event.h"
#include "src/threads/mutex.h"
#include "src/threads/nub.h"
#include "src/threads/rwmutex.h"
#include "src/threads/semaphore.h"
#include "src/waitq/waitq.h"

namespace taos {

namespace {
constexpr std::uint64_t kForever = std::numeric_limits<std::uint64_t>::max();
std::atomic<Timer*> g_timer{nullptr};
}  // namespace

Timer& Timer::Get() {
  static Timer* timer = [] {
    Timer* t = new Timer();  // intentionally leaked; see header
    g_timer.store(t, std::memory_order_release);
    return t;
  }();
  return *timer;
}

Timer* Timer::InstanceIfStarted() {
  return g_timer.load(std::memory_order_acquire);
}

void Timer::PauseForBackendSwitch() {
  {
    std::lock_guard<std::mutex> g(pause_mu_);
    pause_requested_ = true;
  }
  park_.Unpark();  // break an open-ended sleep; a pre-park permit is fine
  std::unique_lock<std::mutex> g(pause_mu_);
  pause_cv_.wait(g, [this] { return paused_; });
}

void Timer::ResumeAfterBackendSwitch() {
  {
    std::lock_guard<std::mutex> g(pause_mu_);
    pause_requested_ = false;
  }
  pause_cv_.notify_all();
}

Timer::Timer() {
  for (int level = 0; level < kLevels; ++level) {
    for (int slot = 0; slot < kSlots; ++slot) {
      TimerNode* s = &slots_[level][slot];
      s->prev = s;
      s->next = s;
    }
  }
  current_tick_ = obs::NowNanos() >> kTickShift;
  std::thread([this] { ThreadMain(); }).detach();
}

void Timer::Arm(ThreadRecord* rec, std::uint64_t gen,
                std::uint64_t deadline_ns) {
  obs::Inc(obs::Counter::kTimersArmed);
  TAOS_CHAOS(kTimerArm);
  bool wake = false;
  {
    SpinGuard g(lock_);
    TimerNode* n = &rec->timer;
    TAOS_DCHECK(!n->armed);
    n->owner = rec;
    n->gen = gen;
    n->deadline_ns = deadline_ns;
    n->armed = true;
    AddLocked(n);
    // Wake the timer thread early if it committed to sleep past this
    // deadline (a conservative comparison: the wheel may round the actual
    // firing up to the next tick; the thread recomputes after waking).
    if (wake_target_ns_ != 0 && deadline_ns < wake_target_ns_) {
      wake = true;
    }
  }
  if (wake) {
    park_.Unpark();
  }
}

void Timer::Cancel(ThreadRecord* rec, std::uint64_t gen) {
  // The cancel-vs-expiry window: the timer thread may have collected this
  // node into an expiry batch already, making the unlink below a no-op.
  TAOS_CHAOS(kTimerCancel);
  SpinGuard g(lock_);
  TimerNode* n = &rec->timer;
  if (n->armed && n->gen == gen) {
    UnlinkLocked(n);
    n->armed = false;
    obs::Inc(obs::Counter::kTimersCancelled);
  }
}

std::uint64_t Timer::ArmedForDebug() {
  SpinGuard g(lock_);
  return total_;
}

void Timer::AddLocked(TimerNode* n) {
  // Never place at or before the current tick: a deadline already due fires
  // at the next tick (expiry is always asynchronous to the arming caller).
  const std::uint64_t tick =
      std::max(TickOf(n->deadline_ns), current_tick_ + 1);
  const std::uint64_t delta = tick - current_tick_;
  int level = 0;
  while (level < kLevels - 1 &&
         delta >= (1ull << (kSlotBits * (level + 1)))) {
    ++level;
  }
  std::uint64_t eff = tick;
  const std::uint64_t horizon = 1ull << (kSlotBits * kLevels);
  if (delta >= horizon) {
    // Beyond the wheel's span: park in the top level's farthest slot; each
    // cascade re-places it by its real tick until it fits.
    eff = current_tick_ + horizon - 1;
  }
  const int slot =
      static_cast<int>((eff >> (kSlotBits * level)) & (kSlots - 1));
  TimerNode* s = &slots_[level][slot];
  n->level = level;
  n->prev = s->prev;
  n->next = s;
  s->prev->next = n;
  s->prev = n;
  ++counts_[level];
  ++total_;
}

void Timer::UnlinkLocked(TimerNode* n) {
  n->prev->next = n->next;
  n->next->prev = n->prev;
  n->prev = nullptr;
  n->next = nullptr;
  --counts_[n->level];
  --total_;
}

void Timer::CollectSlotLocked(TimerNode* sentinel, int level,
                              std::vector<Expiry>* out) {
  (void)level;
  while (sentinel->next != sentinel) {
    TimerNode* n = sentinel->next;
    UnlinkLocked(n);
    n->armed = false;
    TAOS_DCHECK(TickOf(n->deadline_ns) <= current_tick_);
    out->push_back(Expiry{n->owner, n->gen, n->deadline_ns});
  }
}

void Timer::CascadeLocked(int level, std::vector<Expiry>* out) {
  const int slot = static_cast<int>(
      (current_tick_ >> (kSlotBits * level)) & (kSlots - 1));
  TimerNode* s = &slots_[level][slot];
  // Detach the whole slot first: AddLocked below re-links into the wheel and
  // must not see these nodes.
  TimerNode* head = s->next;
  if (head == s) {
    return;
  }
  s->prev->next = nullptr;  // terminate the detached chain
  s->prev = s;
  s->next = s;
  while (head != nullptr) {
    TimerNode* n = head;
    head = n->next;
    n->prev = nullptr;
    n->next = nullptr;
    --counts_[level];
    --total_;
    if (TickOf(n->deadline_ns) <= current_tick_) {
      n->armed = false;
      out->push_back(Expiry{n->owner, n->gen, n->deadline_ns});
    } else {
      AddLocked(n);  // re-place by its real tick (now within a lower level)
    }
  }
}

void Timer::AdvanceLocked(std::uint64_t now_ns, std::vector<Expiry>* out) {
  const std::uint64_t now_tick = now_ns >> kTickShift;
  while (current_tick_ < now_tick) {
    if (total_ == 0) {
      // Nothing armed: skip the idle span instead of walking every tick.
      current_tick_ = now_tick;
      return;
    }
    ++current_tick_;
    // On every 64^k boundary the slot of level k covering the new tick
    // range cascades down before level 0's slot for this tick is drained.
    for (int level = 1; level < kLevels; ++level) {
      if ((current_tick_ & ((1ull << (kSlotBits * level)) - 1)) != 0) {
        break;
      }
      CascadeLocked(level, out);
    }
    CollectSlotLocked(
        &slots_[0][static_cast<int>(current_tick_ & (kSlots - 1))], 0, out);
  }
}

std::uint64_t Timer::NextWakeNsLocked() const {
  if (total_ == 0) {
    return 0;
  }
  if (counts_[0] > 0) {
    // Every level-0 entry lies within the next kSlots ticks; scan for the
    // first non-empty slot, which is the exact earliest firing tick.
    for (std::uint64_t d = 1; d <= kSlots; ++d) {
      const std::uint64_t tick = current_tick_ + d;
      const TimerNode* s =
          &slots_[0][static_cast<int>(tick & (kSlots - 1))];
      if (s->next != s) {
        return tick << kTickShift;
      }
    }
  }
  // Only higher levels are populated: sleep to the next cascade boundary,
  // where their due slots re-place into level 0 and the sleep recomputes.
  return ((current_tick_ >> kSlotBits) + 1) << (kSlotBits + kTickShift);
}

void Timer::ThreadMain() {
  std::vector<Expiry> expired;
  for (;;) {
    {
      // Backend-switch gate: every SpinLock acquisition this thread makes
      // is downstream of this point, so parking here satisfies the switch's
      // quiescence contract.
      std::unique_lock<std::mutex> g(pause_mu_);
      while (pause_requested_) {
        paused_ = true;
        pause_cv_.notify_all();
        pause_cv_.wait(g);
      }
      paused_ = false;
    }
    expired.clear();
    std::uint64_t next = 0;
    {
      SpinGuard g(lock_);
      wake_target_ns_ = 0;  // awake: Arm need not unpark
      AdvanceLocked(obs::NowNanos(), &expired);
      if (expired.empty()) {
        next = NextWakeNsLocked();
        wake_target_ns_ = next == 0 ? kForever : next;
      }
    }
    if (!expired.empty()) {
      // The batch gap: entries were collected under the wheel lock, but
      // their waiters may be granted (or re-arm) before ExpireEntry runs.
      TAOS_CHAOS(kTimerBatchGap);
      const std::uint64_t now = obs::NowNanos();
      for (const Expiry& e : expired) {
        obs::Inc(obs::Counter::kTimersExpired);
        obs::Record(obs::Histogram::kTimerExpiryLagNanos,
                    now >= e.deadline_ns ? now - e.deadline_ns : 0);
        // The expiry slice names the timed-out thread; the wake it causes
        // (if the cancel wins) carries its own flow edge from the Unpark
        // inside ExpireEntry, so traces show timer -> waiter causality.
        obs::ScopedEvent ev(obs::Op::kTimerExpire, e.rec->id);
        ExpireEntry(e);
      }
      continue;  // expiring took time: re-advance before sleeping
    }
    if (next == 0) {
      park_.Park();
    } else {
      park_.ParkUntil(next);
    }
  }
}

void Timer::ExpireEntry(const Expiry& e) {
  Nub& nub = Nub::Get();
  ThreadRecord* t = e.rec;

  // Multi-object waits first: a Poll waiter publishes no object lock and no
  // cell — its blocked state is covered by the record lock alone (the
  // notify-latch protocol, src/threads/poll.cc), so expiry is the same
  // record-lock-only dance in every backend and in traced mode. The
  // gen/timed validation is the usual staleness filter; matching gen means
  // the episode is still parked, so block_kind cannot change under us.
  {
    waitq::Parker* unpark = nullptr;
    t->lock.Acquire();
    const bool poll = t->block_kind == ThreadRecord::BlockKind::kPollAny ||
                      t->block_kind == ThreadRecord::BlockKind::kPollAll;
    if (poll) {
      TAOS_CHAOS(kTimerExpiryToCancel);
      if (t->timed && t->timer_gen == e.gen) {
        ClearBlockedLocked(t);
        t->timeout_woken = true;
        unpark = &t->park;
      }
      t->lock.Release();
      if (unpark != nullptr) {
        obs::Inc(obs::Counter::kHandoffs);
        unpark->Unpark();
      }
      return;
    }
    t->lock.Release();
  }

  if (!nub.tracing() && nub.waitq_mode()) {
    // Production waiter-queue mode: like Alert, expiry needs no object lock.
    // The cancel CAS on the published cell is the whole arbitration with a
    // racing grant — losing it means a Release/V/Signal resume is in
    // flight, and the grant stands (the waiter reports kSatisfied). The
    // blocked_obj dereference is safe for the rule-3 reason: while t's
    // record lock is held and t is observed blocked, t has not returned
    // from its blocking call, so the object is alive.
    waitq::Parker* unpark = nullptr;
    t->lock.Acquire();
    // The timeout-vs-grant window: the cancel CAS below races a
    // Release/V/Signal resume on the same cell.
    TAOS_CHAOS(kTimerExpiryToCancel);
    if (t->timed && t->timer_gen == e.gen &&
        t->block_kind != ThreadRecord::BlockKind::kNone &&
        t->wait_cell != nullptr &&
        t->wait_cell->Cancel() == waitq::WaitCell::CancelOutcome::kCancelled) {
      switch (t->block_kind) {
        case ThreadRecord::BlockKind::kMutex:
          static_cast<Mutex*>(t->blocked_obj)
              ->queue_len_.fetch_sub(1, std::memory_order_relaxed);
          break;
        case ThreadRecord::BlockKind::kSemaphore:
          static_cast<Semaphore*>(t->blocked_obj)
              ->queue_len_.fetch_sub(1, std::memory_order_relaxed);
          break;
        case ThreadRecord::BlockKind::kCondition:
          static_cast<Condition*>(t->blocked_obj)
              ->waiters_.fetch_sub(1, std::memory_order_relaxed);
          break;
        case ThreadRecord::BlockKind::kRwShared:
          static_cast<ReaderWriterMutex*>(t->blocked_obj)
              ->reader_q_len_.fetch_sub(1, std::memory_order_relaxed);
          break;
        case ThreadRecord::BlockKind::kRwExclusive:
          static_cast<ReaderWriterMutex*>(t->blocked_obj)
              ->writer_q_len_.fetch_sub(1, std::memory_order_relaxed);
          break;
        case ThreadRecord::BlockKind::kEvent:
          static_cast<Event*>(t->blocked_obj)
              ->queue_len_.fetch_sub(1, std::memory_order_relaxed);
          break;
        case ThreadRecord::BlockKind::kPollAny:
        case ThreadRecord::BlockKind::kPollAll:
        case ThreadRecord::BlockKind::kNone:
          TAOS_PANIC("unreachable: validated above");
      }
      ClearBlockedLocked(t);
      t->timeout_woken = true;
      unpark = &t->park;
    }
    t->lock.Release();
    if (unpark != nullptr) {
      obs::Inc(obs::Counter::kHandoffs);
      unpark->Unpark();
    }
    return;
  }

  // Classic backend (and every traced run): rule 3 of the ordering
  // discipline, exactly as in Alert — record lock first, TRY-acquire the
  // object lock, back off and retry on failure (its holder may be waking t
  // and will need t's record lock).
  for (;;) {
    t->lock.Acquire();
    TAOS_CHAOS(kTimerExpiryToCancel);
    if (!t->timed || t->timer_gen != e.gen ||
        t->block_kind == ThreadRecord::BlockKind::kNone) {
      // Stale: the waiter was granted (or alerted) first.
      t->lock.Release();
      return;
    }
    SpinLock* obj_lock = t->blocked_lock->Resolve();
    if (!obj_lock->TryAcquire()) {
      t->lock.Release();
      // obj_lock may dangle from here on — the record lock is gone, so its
      // holder can wake t and the object can be destroyed. Rule3Backoff
      // yields without peeking at it; the yield also hands the holder
      // (typically a Signal/Release spinning for t's record lock) the
      // window a single pause never did, curing the retry livelock seen
      // under chaos injection.
      Rule3Backoff();
      continue;
    }
    if (nub.waitq_mode()) {
      // Traced run on the waiter-queue backend: the dequeue is the cancel
      // CAS. Losing it means a resume — emitted earlier under this same
      // object lock — is in flight: the grant stands, nothing to do.
      TAOS_CHECK(t->wait_cell != nullptr);
      if (t->wait_cell->Cancel() !=
          waitq::WaitCell::CancelOutcome::kCancelled) {
        obj_lock->Release();
        t->lock.Release();
        return;
      }
    }
    switch (t->block_kind) {
      case ThreadRecord::BlockKind::kMutex: {
        auto* m = static_cast<Mutex*>(t->blocked_obj);
        if (!nub.waitq_mode()) {
          m->queue_.Remove(t);
        }
        m->queue_len_.fetch_sub(1, std::memory_order_relaxed);
        break;
      }
      case ThreadRecord::BlockKind::kSemaphore: {
        auto* s = static_cast<Semaphore*>(t->blocked_obj);
        if (!nub.waitq_mode()) {
          s->queue_.Remove(t);
        }
        s->queue_len_.fetch_sub(1, std::memory_order_relaxed);
        break;
      }
      case ThreadRecord::BlockKind::kCondition: {
        auto* c = static_cast<Condition*>(t->blocked_obj);
        if (!nub.waitq_mode()) {
          c->queue_.Remove(t);
        }
        if (nub.tracing()) {
          // The timed-out thread stays a spec-member of c until its
          // TimeoutResume action fires (mirroring pending_raise_), so a
          // Signal in between may still remove it.
          c->pending_timeout_.push_back(t);
        } else {
          c->waiters_.fetch_sub(1, std::memory_order_relaxed);
        }
        break;
      }
      case ThreadRecord::BlockKind::kRwShared: {
        auto* rw = static_cast<ReaderWriterMutex*>(t->blocked_obj);
        if (!nub.waitq_mode()) {
          rw->readers_queue_.Remove(t);
        }
        rw->reader_q_len_.fetch_sub(1, std::memory_order_relaxed);
        break;
      }
      case ThreadRecord::BlockKind::kRwExclusive: {
        auto* rw = static_cast<ReaderWriterMutex*>(t->blocked_obj);
        if (!nub.waitq_mode()) {
          rw->writers_queue_.Remove(t);
        }
        rw->writer_q_len_.fetch_sub(1, std::memory_order_relaxed);
        break;
      }
      case ThreadRecord::BlockKind::kEvent: {
        auto* ev = static_cast<Event*>(t->blocked_obj);
        if (!nub.waitq_mode()) {
          ev->queue_.Remove(t);
        }
        ev->queue_len_.fetch_sub(1, std::memory_order_relaxed);
        break;
      }
      case ThreadRecord::BlockKind::kPollAny:
      case ThreadRecord::BlockKind::kPollAll:
      case ThreadRecord::BlockKind::kNone:
        TAOS_PANIC("unreachable: validated above");
    }
    ClearBlockedLocked(t);
    t->timeout_woken = true;
    obj_lock->Release();
    t->lock.Release();
    obs::Inc(obs::Counter::kHandoffs);
    t->park.Unpark();
    return;
  }
}

}  // namespace taos
