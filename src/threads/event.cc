#include "src/threads/event.h"

#include <vector>

#include "src/base/chaos.h"
#include "src/base/check.h"
#include "src/obs/metrics.h"
#include "src/obs/recorder.h"
#include "src/spec/action.h"
#include "src/threads/nub.h"
#include "src/threads/timer.h"

namespace taos {

Event::Event(EventReset reset)
    : set_(0), reset_(reset), id_(Nub::Get().NextObjId()) {
  pollers_.next = &pollers_;
  pollers_.prev = &pollers_;
}

Event::~Event() {
  TAOS_CHECK(queue_.Empty());
  TAOS_CHECK(wqueue_.DrainedForDebug());
  // REQUIRES no live poll registrations: a Poll waiter's PollNode points
  // into a stack frame that outlives its WaitAny/WaitAll call, not this
  // object.
  TAOS_CHECK(pollers_.next == &pollers_);
  TAOS_CHECK(pollers_len_.load(std::memory_order_relaxed) == 0);
  TAOS_CHECK(pqueue_.DrainedForDebug());
}

void Event::Set() {
  obs::WithEvent(obs::Op::kEventSet, id_, [&] {
    Nub& nub = Nub::Get();
    if (nub.tracing()) {
      TracedSet(nub.Current());
      return;
    }
    set_.store(1, std::memory_order_seq_cst);
    TAOS_CHAOS(kEventSetToResume);
    // Dekker pairing, twice over: a plain waiter enqueues (queue_len_
    // fetch_add, seq_cst) before testing set_, and a poller registers
    // (pollers_len_ fetch_add, seq_cst) before scanning set_. Either the
    // waiter/poller sees the flag, or this load sees the registration.
    if (queue_len_.load(std::memory_order_seq_cst) > 0 ||
        pollers_len_.load(std::memory_order_seq_cst) > 0) {
      NubSet();
    }
  });
}

void Event::Reset() {
  Nub& nub = Nub::Get();
  if (nub.tracing()) {
    TracedReset(nub.Current());
    return;
  }
  set_.store(0, std::memory_order_seq_cst);
}

bool Event::TryWait() {
  Nub& nub = Nub::Get();
  if (nub.tracing()) {
    ThreadRecord* self = nub.Current();
    NubGuard g(nub_lock_);
    if (set_.load(std::memory_order_relaxed) == 0) {
      return false;
    }
    if (reset_ == EventReset::kAuto) {
      set_.store(0, std::memory_order_relaxed);
      nub.EmitTraced(spec::MakeEventConsume(self->id, id_));
    } else {
      nub.EmitTraced(spec::MakeEventWait(self->id, id_));
    }
    return true;
  }
  return TryConsume(std::memory_order_acquire);
}

void Event::Wait() {
  obs::WithEvent(obs::Op::kEventWait, id_, [&] {
    Nub& nub = Nub::Get();
    ThreadRecord* self = nub.Current();
    if (nub.tracing()) {
      TracedWait(self);
      return;
    }
    if (TryConsume(std::memory_order_acquire)) {
      return;
    }
    NubWait(self);
  });
}

WaitResult Event::WaitFor(std::chrono::nanoseconds timeout) {
  WaitResult result = WaitResult::kSatisfied;
  obs::WithEvent(obs::Op::kEventWait, id_, [&] {
    Nub& nub = Nub::Get();
    ThreadRecord* self = nub.Current();
    if (nub.tracing()) {
      const std::uint64_t deadline =
          timeout.count() > 0 ? DeadlineAfter(timeout) : 0;
      result = TracedWaitFor(self, deadline) ? WaitResult::kSatisfied
                                             : WaitResult::kTimeout;
    } else if (TryConsume(std::memory_order_acquire)) {
      // Fast path tried even with an expired deadline: WaitFor(0) is
      // TryWait with a WaitResult.
    } else if (timeout.count() <= 0) {
      result = WaitResult::kTimeout;
    } else if (!NubWaitFor(self, DeadlineAfter(timeout))) {
      result = WaitResult::kTimeout;
    }
  });
  obs::Inc(result == WaitResult::kSatisfied
               ? obs::Counter::kTimedWaitSatisfied
               : obs::Counter::kTimedWaitTimeouts);
  return result;
}

void Event::NubWait(ThreadRecord* self) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  if (nub.waitq_mode()) {
    WaitqWait(self);
    return;
  }
  for (;;) {
    bool parked = false;
    {
      NubGuard g(nub_lock_);
      queue_.PushBack(self);
      queue_len_.fetch_add(1, std::memory_order_seq_cst);
      if (set_.load(std::memory_order_seq_cst) == 0) {
        MarkBlocked(self, ThreadRecord::BlockKind::kEvent, this, id_,
                    &nub_lock_, /*alertable=*/false);
        parked = true;
      } else {
        queue_.Remove(self);
        queue_len_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    if (parked) {
      ParkBlocked(self);
    }
    if (TryConsume(std::memory_order_acquire)) {
      return;
    }
    if (parked) {
      obs::Inc(obs::Counter::kSpuriousWakeups);
    }
  }
}

void Event::WaitqWait(ThreadRecord* self) {
  for (;;) {
    bool parked = false;
    waitq::WaitCell* cell = wqueue_.Enqueue();
    queue_len_.fetch_add(1, std::memory_order_seq_cst);
    if (set_.load(std::memory_order_seq_cst) == 0) {
      {
        SpinGuard tg(self->lock);
        parked =
            InstallBlockedLocked(self, cell, ThreadRecord::BlockKind::kEvent,
                                 this, id_, &nub_lock_, /*alertable=*/false);
      }
      if (parked) {
        ParkBlocked(self);
      }
      FinishWaitCell(self, cell);
    } else {
      if (cell->Cancel() == waitq::WaitCell::CancelOutcome::kCancelled) {
        queue_len_.fetch_sub(1, std::memory_order_relaxed);
      }
      waitq::WaitQueue::Detach(cell);
    }
    if (TryConsume(std::memory_order_acquire)) {
      return;
    }
    if (parked) {
      obs::Inc(obs::Counter::kSpuriousWakeups);
    }
  }
}

bool Event::NubWaitFor(ThreadRecord* self, std::uint64_t deadline_ns) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  if (nub.waitq_mode()) {
    return WaitqWaitFor(self, deadline_ns);
  }
  for (;;) {
    bool parked = false;
    std::uint64_t gen = 0;
    {
      NubGuard g(nub_lock_);
      queue_.PushBack(self);
      queue_len_.fetch_add(1, std::memory_order_seq_cst);
      if (set_.load(std::memory_order_seq_cst) == 0) {
        gen = ++self->next_timer_gen;
        SpinGuard tg(self->lock);
        SetBlockedLocked(self, ThreadRecord::BlockKind::kEvent, this, id_,
                         &nub_lock_, /*alertable=*/false);
        PublishTimedLocked(self, gen);
        parked = true;
      } else {
        queue_.Remove(self);
        queue_len_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    if (parked) {
      Timer::Get().Arm(self, gen, deadline_ns);
      ParkBlocked(self);
      Timer::Get().Cancel(self, gen);
    }
    const bool expired = parked && ConsumeTimeoutWoken(self);
    // Consume FIRST, deadline second: a Set's grant is never converted into
    // a timeout by a co-incident expiry.
    if (TryConsume(std::memory_order_acquire)) {
      return true;
    }
    if (parked) {
      obs::Inc(obs::Counter::kSpuriousWakeups);
    }
    if (expired || obs::NowNanos() >= deadline_ns) {
      return false;
    }
  }
}

bool Event::WaitqWaitFor(ThreadRecord* self, std::uint64_t deadline_ns) {
  for (;;) {
    bool parked = false;
    waitq::WaitCell* cell = wqueue_.Enqueue();
    queue_len_.fetch_add(1, std::memory_order_seq_cst);
    if (set_.load(std::memory_order_seq_cst) == 0) {
      std::uint64_t gen = 0;
      {
        SpinGuard tg(self->lock);
        parked =
            InstallBlockedLocked(self, cell, ThreadRecord::BlockKind::kEvent,
                                 this, id_, &nub_lock_, /*alertable=*/false);
        if (parked) {
          gen = ++self->next_timer_gen;
          PublishTimedLocked(self, gen);
        }
      }
      if (parked) {
        Timer::Get().Arm(self, gen, deadline_ns);
        ParkBlocked(self);
        Timer::Get().Cancel(self, gen);
      }
      FinishWaitCell(self, cell);
    } else {
      if (cell->Cancel() == waitq::WaitCell::CancelOutcome::kCancelled) {
        queue_len_.fetch_sub(1, std::memory_order_relaxed);
      }
      waitq::WaitQueue::Detach(cell);
    }
    const bool expired = parked && ConsumeTimeoutWoken(self);
    if (TryConsume(std::memory_order_acquire)) {
      return true;
    }
    if (parked) {
      obs::Inc(obs::Counter::kSpuriousWakeups);
    }
    if (expired || obs::NowNanos() >= deadline_ns) {
      return false;
    }
  }
}

void Event::NubSet() {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  std::vector<waitq::Parker*> unparks;
  {
    NubGuard g(nub_lock_);
    ResumeForSetLocked(&unparks);
  }
  for (waitq::Parker* p : unparks) {
    obs::Inc(obs::Counter::kHandoffs);
    p->Unpark();
  }
}

// The Set policy, factored so Poll's WaitAll rollback (which re-publishes a
// tentatively consumed flag while already holding this event's ObjLock) and
// TracedSet share it: auto-reset wakes ONE plain waiter if there is one —
// the pulse has a single consumer and a dedicated waiter will be it — and
// falls back to notifying the pollers; manual-reset wakes every plain
// waiter AND notifies every poller (all of them can observe the flag).
// REQUIRES nub_lock_ held and set_ already published as 1.
void Event::ResumeForSetLocked(std::vector<waitq::Parker*>* unparks) {
  Nub& nub = Nub::Get();
  bool woke_plain = false;
  if (nub.waitq_mode()) {
    for (;;) {
      const waitq::WaitQueue::Resumed r = wqueue_.ResumeOne();
      if (!r.resumed) {
        break;
      }
      queue_len_.fetch_sub(1, std::memory_order_relaxed);
      woke_plain = true;
      if (r.parker != nullptr) {
        unparks->push_back(r.parker);
      }
      if (reset_ == EventReset::kAuto) {
        break;
      }
    }
  } else {
    for (;;) {
      ThreadRecord* wake = queue_.PopFront();
      if (wake == nullptr) {
        break;
      }
      queue_len_.fetch_sub(1, std::memory_order_relaxed);
      MarkUnblocked(wake);
      unparks->push_back(&wake->park);
      woke_plain = true;
      if (reset_ == EventReset::kAuto) {
        break;
      }
    }
  }
  // An auto-reset pulse taken by a plain waiter is consumed (or, if the
  // waiter loses the consume race to a barger, consumed by the barger);
  // either way the pollers have nothing to observe, so skipping them loses
  // no wakeup.
  if (reset_ == EventReset::kManual || !woke_plain) {
    NotifyPollersLocked(unparks);
  }
}

void Event::NotifyPollersLocked(std::vector<waitq::Parker*>* unparks) {
  if (Nub::Get().waitq_mode()) {
    // Notification consumes the registration cell; the poller refreshes it
    // (under this lock) on its next scan. pollers_len_ drops here so a
    // second Set before the refresh skips the Nub — benign, because the
    // poller's refresh re-scans the flag before it can park again.
    for (;;) {
      const waitq::WaitQueue::Resumed r = pqueue_.ResumeOne();
      if (!r.resumed) {
        break;
      }
      pollers_len_.fetch_sub(1, std::memory_order_relaxed);
      ThreadRecord* rec = static_cast<ThreadRecord*>(r.tag);
      // Cells are installed under this ObjLock, so no immediate grants.
      TAOS_CHECK(rec != nullptr);
      NotifyPoller(rec, unparks);
    }
  } else {
    for (PollNode* n = pollers_.next; n != &pollers_; n = n->next) {
      NotifyPoller(n->rec, unparks);
    }
  }
}

// Notify-only: flips the registrant's latch and, on the 0->1 edge alone,
// unblocks it. The granter never consumes the event on the poller's behalf
// and never touches the poller's stack — `rec` is the process-lifetime
// ThreadRecord. At most one notifier wins the edge per re-arm, so a parked
// poller receives at most one unpark per park (the parker's single-permit
// contract).
void Event::NotifyPoller(ThreadRecord* rec,
                         std::vector<waitq::Parker*>* unparks) {
  if (rec->poll_latch.exchange(1, std::memory_order_seq_cst) != 0) {
    return;
  }
  TAOS_CHAOS(kPollNotify);
  SpinGuard tg(rec->lock);
  if (rec->block_kind == ThreadRecord::BlockKind::kPollAny ||
      rec->block_kind == ThreadRecord::BlockKind::kPollAll) {
    ClearBlockedLocked(rec);
    unparks->push_back(&rec->park);
  }
  // Latch already 1 but not blocked: the poller is mid-scan and will see
  // the latch at its pre-park check — no unpark owed.
}

void Event::RegisterPollerLocked(PollNode* node) {
  if (Nub::Get().waitq_mode()) {
    if (node->cell != nullptr) {
      if (node->cell->state() == waitq::WaitCell::State::kWaiting) {
        return;  // still registered
      }
      // A notification consumed the old cell; this scan is its replacement.
      waitq::WaitQueue::Detach(node->cell);
      node->cell = nullptr;
    }
    waitq::WaitCell* cell = pqueue_.Enqueue();
    // Cannot fail: resumers hold this ObjLock, which the caller holds.
    TAOS_CHECK(cell->Install(&node->rec->park, node->rec));
    node->cell = cell;
  } else {
    if (node->linked) {
      return;
    }
    node->prev = pollers_.prev;
    node->next = &pollers_;
    pollers_.prev->next = node;
    pollers_.prev = node;
    node->linked = true;
  }
  pollers_len_.fetch_add(1, std::memory_order_seq_cst);
  obs::Inc(obs::Counter::kPollRegistrations);
  TAOS_CHAOS(kPollRegister);
}

void Event::DeregisterPoller(PollNode* node) {
  TAOS_CHAOS(kPollDeregister);
  if (Nub::Get().waitq_mode()) {
    if (node->cell == nullptr) {
      return;
    }
    // O(1) abort-as-cancellation: one CAS, no event lock. Losing to a
    // resume means a Set's notification is in flight — it only flips the
    // latch (already decremented pollers_len_), never consumes anything on
    // our behalf, so letting it stand loses no signal.
    if (node->cell->Cancel() == waitq::WaitCell::CancelOutcome::kCancelled) {
      pollers_len_.fetch_sub(1, std::memory_order_relaxed);
    }
    waitq::WaitQueue::Detach(node->cell);
    node->cell = nullptr;
  } else {
    if (!node->linked) {
      return;
    }
    NubGuard g(nub_lock_);
    node->prev->next = node->next;
    node->next->prev = node->prev;
    node->prev = nullptr;
    node->next = nullptr;
    node->linked = false;
    pollers_len_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Event::TracedSet(ThreadRecord* self) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  std::vector<waitq::Parker*> unparks;
  {
    NubGuard g(nub_lock_);
    set_.store(1, std::memory_order_relaxed);
    nub.EmitTraced(spec::MakeEventSet(self->id, id_));
    ResumeForSetLocked(&unparks);
  }
  for (waitq::Parker* p : unparks) {
    obs::Inc(obs::Counter::kHandoffs);
    p->Unpark();
  }
}

void Event::TracedReset(ThreadRecord* self) {
  Nub& nub = Nub::Get();
  NubGuard g(nub_lock_);
  set_.store(0, std::memory_order_relaxed);
  nub.EmitTraced(spec::MakeEventReset(self->id, id_));
}

void Event::TracedWait(ThreadRecord* self) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    waitq::WaitCell* cell = nullptr;
    bool parked = false;
    {
      NubGuard g(nub_lock_);
      if (set_.load(std::memory_order_relaxed) != 0) {
        if (reset_ == EventReset::kAuto) {
          set_.store(0, std::memory_order_relaxed);
          nub.EmitTraced(spec::MakeEventConsume(self->id, id_));
        } else {
          nub.EmitTraced(spec::MakeEventWait(self->id, id_));
        }
        return;
      }
      if (nub.waitq_mode()) {
        cell = wqueue_.Enqueue();
        queue_len_.fetch_add(1, std::memory_order_relaxed);
        SpinGuard tg(self->lock);
        // Cannot fail: resumers hold this ObjLock, which we hold.
        TAOS_CHECK(InstallBlockedLocked(self, cell,
                                        ThreadRecord::BlockKind::kEvent, this,
                                        id_, &nub_lock_,
                                        /*alertable=*/false));
      } else {
        queue_.PushBack(self);
        queue_len_.fetch_add(1, std::memory_order_relaxed);
        MarkBlocked(self, ThreadRecord::BlockKind::kEvent, this, id_,
                    &nub_lock_, /*alertable=*/false);
      }
      parked = true;
    }
    if (parked) {
      ParkBlocked(self);
      if (cell != nullptr) {
        FinishWaitCell(self, cell);
      }
    }
  }
}

bool Event::TracedWaitFor(ThreadRecord* self, std::uint64_t deadline_ns) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    waitq::WaitCell* cell = nullptr;
    bool parked = false;
    std::uint64_t gen = 0;
    {
      NubGuard g(nub_lock_);
      // Take-test before deadline-test: a grant beats a co-incident expiry.
      if (set_.load(std::memory_order_relaxed) != 0) {
        if (reset_ == EventReset::kAuto) {
          set_.store(0, std::memory_order_relaxed);
          SpinGuard tg(self->lock);
          nub.EmitTraced(spec::MakeEventConsume(self->id, id_));
        } else {
          SpinGuard tg(self->lock);
          nub.EmitTraced(spec::MakeEventWait(self->id, id_));
        }
        return true;
      }
      if (obs::NowNanos() >= deadline_ns) {
        // WaitFor/TIMEOUT over the one-event set {e}: a no-op on s, one
        // atomic action under the object lock.
        spec::ObjIdSet ws;
        ws = ws.Insert(id_);
        SpinGuard tg(self->lock);
        nub.EmitTraced(spec::MakePollTimeout(self->id, ws));
        return false;
      }
      gen = ++self->next_timer_gen;
      if (nub.waitq_mode()) {
        cell = wqueue_.Enqueue();
        queue_len_.fetch_add(1, std::memory_order_relaxed);
        SpinGuard tg(self->lock);
        // Cannot fail: resumers hold this ObjLock, which we hold.
        TAOS_CHECK(InstallBlockedLocked(self, cell,
                                        ThreadRecord::BlockKind::kEvent, this,
                                        id_, &nub_lock_,
                                        /*alertable=*/false));
        PublishTimedLocked(self, gen);
      } else {
        queue_.PushBack(self);
        queue_len_.fetch_add(1, std::memory_order_relaxed);
        SpinGuard tg(self->lock);
        SetBlockedLocked(self, ThreadRecord::BlockKind::kEvent, this, id_,
                         &nub_lock_, /*alertable=*/false);
        PublishTimedLocked(self, gen);
      }
      parked = true;
    }
    if (parked) {
      Timer::Get().Arm(self, gen, deadline_ns);
      ParkBlocked(self);
      Timer::Get().Cancel(self, gen);
      if (cell != nullptr) {
        FinishWaitCell(self, cell);
      }
      ConsumeTimeoutWoken(self);  // loop-top deadline check decides
    }
  }
}

}  // namespace taos
