// Events: a boolean state variable threads can wait on, the base object of
// the multi-object wait subsystem (src/threads/poll.h, DESIGN.md §15).
//
// Specification (extension; not in SRC Report 20):
//
//   TYPE Event = BOOL INITIALLY FALSE
//   ATOMIC PROCEDURE Set(VAR e)    MODIFIES AT MOST [e]  ENSURES epost = TRUE
//   ATOMIC PROCEDURE Reset(VAR e)  MODIFIES AT MOST [e]  ENSURES epost = FALSE
//   Wait(e), manual-reset:  ATOMIC  WHEN e  ENSURES UNCHANGED [e]
//   Wait(e), auto-reset:    ATOMIC  WHEN e  ENSURES epost = FALSE
//
// The reset mode is a property of the object, fixed at construction: a
// manual-reset event stays set until Reset (a Wait observes it; any number
// of waiters get through), an auto-reset event is consumed by the granted
// waiter (exactly one waiter per Set gets through — the paper's binary
// semaphore with a WHEN clause instead of a handoff).
//
// Level-triggered, waiter-side consumption: Set publishes the flag and
// wakes; woken waiters re-test and (auto mode) race to consume, Mesa-style,
// exactly like the mutex's barging retry loop. There is no granter-side
// handoff, which is what makes the multi-object protocol's races benign —
// a notification that reaches a waiter that no longer wants the event
// consumes nothing (see poll.h for the full argument).
//
// Beyond the plain waiter queues (classic intrusive / waitq cells, exactly
// Semaphore's), an Event carries a *pollable list*: registrations by
// Poll::WaitAny/WaitAll waiters that Set must notify. In classic mode this
// is an intrusive doubly-linked list of stack-resident PollNodes guarded by
// the event's ObjLock; in waitq mode it is a second CQS queue whose cells
// tag the registrant's ThreadRecord, giving deregistration the same O(1)
// abort-as-cancellation path as Alert.

#ifndef TAOS_SRC_THREADS_EVENT_H_
#define TAOS_SRC_THREADS_EVENT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "src/base/intrusive_queue.h"
#include "src/spec/state.h"
#include "src/threads/nub.h"
#include "src/threads/thread_record.h"
#include "src/threads/wait_result.h"
#include "src/waitq/waitq.h"

namespace taos {

class Poll;
class Event;

enum class EventReset : std::uint8_t {
  kManual,  // Set satisfies every waiter until Reset
  kAuto,    // each Set is consumed by exactly one granted waiter
};

// One Poll waiter's registration on one Event. Lives in the waiter's frame
// for the duration of the WaitAny/WaitAll call. The list links and `linked`
// are guarded by the event's ObjLock (classic mode); `cell` is
// waiter-private bookkeeping naming the current waitq registration cell
// (refreshed under the event's ObjLock when a notification consumes it).
// Granters never dereference a PollNode outside the event's ObjLock, and
// never at all in waitq mode — the cell's tag carries the process-lifetime
// ThreadRecord* instead.
struct PollNode {
  PollNode* prev = nullptr;
  PollNode* next = nullptr;
  ThreadRecord* rec = nullptr;
  Event* event = nullptr;
  waitq::WaitCell* cell = nullptr;
  bool linked = false;
};

class Event {
 public:
  explicit Event(EventReset reset = EventReset::kManual);
  // REQUIRES no blocked waiters and no live poll registrations.
  ~Event();
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  // ENSURES epost = TRUE, waking waiters: all of them for manual-reset, one
  // for auto-reset (pollers are notified when no plain waiter took the
  // pulse). Safe from any thread, no precondition — like V.
  void Set();

  // ENSURES epost = FALSE. No wakeups.
  void Reset();

  // Blocks until the event is set; auto-reset consumes it. Not alertable
  // (Poll's alertable variants are the composition point with Alert).
  void Wait();

  // Single attempt; true iff the event was set (and, auto mode, consumed).
  bool TryWait();

  // Wait with a deadline: kSatisfied (auto: consumed), or kTimeout once
  // `timeout` has elapsed. A Set that grants this thread always beats a
  // co-incident expiry. Zero/negative timeout degenerates to TryWait.
  WaitResult WaitFor(std::chrono::nanoseconds timeout);

  // Racy snapshot.
  bool IsSet() const { return set_.load(std::memory_order_relaxed) != 0; }

  EventReset reset_mode() const { return reset_; }
  spec::ObjId id() const { return id_; }

 private:
  friend class Poll;
  friend class Timer;
  friend void Alert(ThreadHandle t);

  void NubWait(ThreadRecord* self);
  void WaitqWait(ThreadRecord* self);
  bool NubWaitFor(ThreadRecord* self, std::uint64_t deadline_ns);
  bool WaitqWaitFor(ThreadRecord* self, std::uint64_t deadline_ns);
  void NubSet();
  void ResumeForSetLocked(std::vector<waitq::Parker*>* unparks);
  void TracedSet(ThreadRecord* self);
  void TracedReset(ThreadRecord* self);
  void TracedWait(ThreadRecord* self);
  bool TracedWaitFor(ThreadRecord* self, std::uint64_t deadline_ns);

  // The waiter-side claim: auto-reset exchanges the flag away, manual-reset
  // observes it.
  bool TryConsume(std::memory_order order) {
    if (reset_ == EventReset::kAuto) {
      return set_.exchange(0, order) != 0;
    }
    return set_.load(order) != 0;
  }

  // --- pollable-list plumbing (called by Poll and by Set) ---

  // Registers / refreshes `node` on this event's pollable list. REQUIRES
  // nub_lock_ held and node->event == this. In waitq mode a consumed
  // (terminal) cell is detached and replaced; holding the event's ObjLock
  // across Enqueue+Install means the Install cannot lose to a resumer.
  void RegisterPollerLocked(PollNode* node);

  // Removes `node`'s registration. Classic mode takes the event's ObjLock
  // to unlink; waitq mode is the O(1) lock-free cancel CAS (kLostToResume
  // means a Set's notification won — harmless, notifications only hint).
  void DeregisterPoller(PollNode* node);

  // Notifies every registered poller (latch 0->1 edge does the record-lock
  // unblock dance); collects parkers to unpark after the lock drops.
  // REQUIRES nub_lock_ held.
  void NotifyPollersLocked(std::vector<waitq::Parker*>* unparks);
  static void NotifyPoller(ThreadRecord* rec,
                           std::vector<waitq::Parker*>* unparks);

  std::atomic<std::uint32_t> set_;      // 1 iff set
  ObjLock nub_lock_;                    // guards the queues and poller list
  IntrusiveQueue<ThreadRecord> queue_;  // plain waiters, classic backend
  waitq::WaitQueue wqueue_;             // plain waiters, waitq backend
  std::atomic<std::int32_t> queue_len_{0};
  PollNode pollers_;  // classic poller list: circular, sentinel node
  waitq::WaitQueue pqueue_;  // waitq poller registrations
  std::atomic<std::int32_t> pollers_len_{0};
  const EventReset reset_;
  spec::ObjId id_;
};

}  // namespace taos

#endif  // TAOS_SRC_THREADS_EVENT_H_
