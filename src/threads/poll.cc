#include "src/threads/poll.h"

#include <algorithm>
#include <vector>

#include "src/base/chaos.h"
#include "src/base/check.h"
#include "src/obs/metrics.h"
#include "src/obs/recorder.h"
#include "src/spec/action.h"
#include "src/threads/alert.h"
#include "src/threads/nub.h"
#include "src/threads/timer.h"

namespace taos {

namespace {

// Rule 2 of the ordering discipline generalized from pairs (NubGuard2) to
// the wait set: acquire every member's resolved slow-path lock in ascending
// address order, deduplicated (in global-lock mode all members resolve to
// the one Nub lock, which is then acquired exactly once).
class LockAllGuard {
 public:
  // `resolved` holds each member's ObjLock::Resolve() result, unsorted and
  // possibly with duplicates (the caller is Event's friend; we are not).
  LockAllGuard(SpinLock* const* resolved, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      SpinLock* l = resolved[i];
      std::size_t pos = 0;
      while (pos < n_ && reinterpret_cast<std::uintptr_t>(locks_[pos]) <
                             reinterpret_cast<std::uintptr_t>(l)) {
        ++pos;
      }
      if (pos < n_ && locks_[pos] == l) {
        continue;
      }
      for (std::size_t j = n_; j > pos; --j) {
        locks_[j] = locks_[j - 1];
      }
      locks_[pos] = l;
      ++n_;
    }
    for (std::size_t i = 0; i < n_; ++i) {
      locks_[i]->Acquire();
    }
  }

  ~LockAllGuard() {
    for (std::size_t i = n_; i-- > 0;) {
      locks_[i]->Release();
    }
  }

  LockAllGuard(const LockAllGuard&) = delete;
  LockAllGuard& operator=(const LockAllGuard&) = delete;

 private:
  SpinLock* locks_[Poll::kMaxWait] = {};
  std::size_t n_ = 0;
};

}  // namespace

void Poll::Add(Event& e) {
  TAOS_CHECK(n_ < kMaxWait);
  for (std::size_t i = 0; i < n_; ++i) {
    // REQUIRES distinct members: a duplicate would double-register one
    // PollNode and make "which index was granted" ambiguous.
    TAOS_CHECK(events_[i] != &e);
  }
  events_[n_++] = &e;
}

spec::ObjIdSet Poll::WaitSetIds() const {
  spec::ObjIdSet ws;
  for (std::size_t i = 0; i < n_; ++i) {
    ws = ws.Insert(events_[i]->id());
  }
  return ws;
}

void Poll::DeregisterAll(PollNode* nodes) {
  for (std::size_t i = 0; i < n_; ++i) {
    events_[i]->DeregisterPoller(&nodes[i]);
  }
}

// One WaitAny round: per member, (re)register under its lock, then attempt
// the waiter-side claim. Returns the granted index, or size() if nothing
// was ready. Registration-before-test is the Dekker pairing with Set's
// flag-store-then-len-load; the claim itself needs no lock (it is the same
// atomic exchange/load every consumer uses).
std::size_t Poll::ScanAny(PollNode* nodes) {
  for (std::size_t i = 0; i < n_; ++i) {
    Event* ev = events_[i];
    {
      NubGuard g(ev->nub_lock_);
      ev->RegisterPollerLocked(&nodes[i]);
    }
    if (ev->TryConsume(std::memory_order_acquire)) {
      return i;
    }
  }
  return n_;
}

// One WaitAll round under every member's lock: register all, test all, and
// if all are set claim the auto-reset members. A lock-free consumer
// (TryWait / Wait's fast path takes no lock) can still steal a member
// between our test and our exchange; the claim then rolls back by
// re-publishing the pulses already taken, running each event's Set resume
// policy in place (we hold its lock). The rollback is observable as a
// transient consume+set pulse on those members — each step individually
// legal (the barger's claim linearizes against real states) — and cannot
// happen in traced runs, where every consumer takes the lock, so the
// spec-checked WaitAll is genuinely atomic.
bool Poll::ScanAll(PollNode* nodes, spec::ObjId* first_unset) {
  std::vector<waitq::Parker*> unparks;
  bool ready = false;
  SpinLock* resolved[kMaxWait];
  for (std::size_t i = 0; i < n_; ++i) {
    resolved[i] = events_[i]->nub_lock_.Resolve();
  }
  {
    LockAllGuard g(resolved, n_);
    for (std::size_t i = 0; i < n_; ++i) {
      events_[i]->RegisterPollerLocked(&nodes[i]);
    }
    ready = true;
    for (std::size_t i = 0; i < n_; ++i) {
      if (events_[i]->set_.load(std::memory_order_seq_cst) == 0) {
        ready = false;
        *first_unset = events_[i]->id();
        break;
      }
    }
    if (ready) {
      for (std::size_t i = 0; i < n_ && ready; ++i) {
        Event* ev = events_[i];
        if (ev->reset_ != EventReset::kAuto) {
          continue;
        }
        if (ev->set_.exchange(0, std::memory_order_acquire) == 0) {
          ready = false;
          *first_unset = ev->id();
          for (std::size_t j = 0; j < i; ++j) {
            Event* undo = events_[j];
            if (undo->reset_ != EventReset::kAuto) {
              continue;
            }
            undo->set_.store(1, std::memory_order_seq_cst);
            undo->ResumeForSetLocked(&unparks);
          }
        }
      }
    }
  }
  for (waitq::Parker* p : unparks) {
    obs::Inc(obs::Counter::kHandoffs);
    p->Unpark();
  }
  return ready;
}

Poll::Outcome Poll::WaitInternal(bool all, bool alertable, bool timed,
                                 std::uint64_t deadline_ns) {
  // REQUIRES wait_set # {}: WaitAny over nothing can never be granted, and
  // WaitAll over nothing is vacuously granted — both are caller bugs.
  TAOS_CHECK(n_ > 0);
  Nub& nub = Nub::Get();
  ThreadRecord* self = nub.Current();
  if (nub.tracing()) {
    return TracedWait(self, all, alertable, timed, deadline_ns);
  }
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);

  PollNode nodes[kMaxWait];
  for (std::size_t i = 0; i < n_; ++i) {
    nodes[i].rec = self;
    nodes[i].event = events_[i];
  }

  Outcome out{WaitResult::kSatisfied, n_};
  bool parked = false;
  bool expired = false;
  bool alert_pending = false;
  for (;;) {
    // Re-arm the latch BEFORE registering and scanning: a Set landing after
    // this store either sees the registration (and flips the latch, which
    // the pre-park check below observes) or is itself seen by the scan.
    self->poll_latch.store(0, std::memory_order_seq_cst);
    spec::ObjId first_unset = events_[0]->id();
    std::size_t index = 0;
    bool ready;
    if (all) {
      ready = ScanAll(nodes, &first_unset);
    } else {
      index = ScanAny(nodes);
      ready = index < n_;
    }
    if (ready) {
      out = {WaitResult::kSatisfied, index};
      break;
    }
    if (parked) {
      obs::Inc(obs::Counter::kPollSpuriousScans);
    }
    // Scan before deadline: a grant always beats a co-incident expiry. A
    // timeout observed here leaves a pending alert pending.
    if (expired || (timed && obs::NowNanos() >= deadline_ns)) {
      out = {WaitResult::kTimeout, n_};
      break;
    }
    if (alert_pending) {
      SpinGuard tg(self->lock);
      self->alerted.store(false, std::memory_order_relaxed);
      out = {WaitResult::kAlerted, n_};
      break;
    }
    parked = false;
    std::uint64_t gen = 0;
    {
      SpinGuard tg(self->lock);
      if (alertable && self->alerted.load(std::memory_order_relaxed)) {
        // Pending alert: one more (failed) scan above decides the exit, so
        // a member set in the meantime still beats the alert.
        alert_pending = true;
      } else if (self->poll_latch.load(std::memory_order_seq_cst) == 0) {
        // Latch still disarmed under the record lock: no Set has notified
        // since the re-arm, so parking cannot strand us — a later notify
        // wins the 0->1 edge, sees this blocked state, and unparks.
        SetBlockedLocked(self,
                         all ? ThreadRecord::BlockKind::kPollAll
                             : ThreadRecord::BlockKind::kPollAny,
                         this, all ? first_unset : events_[0]->id(),
                         /*obj_lock=*/nullptr, alertable);
        if (timed) {
          gen = ++self->next_timer_gen;
          PublishTimedLocked(self, gen);
        }
        parked = true;
      }
    }
    TAOS_CHAOS(kPollScanToPark);
    if (parked) {
      if (timed) {
        Timer::Get().Arm(self, gen, deadline_ns);
      }
      ParkBlocked(self);
      if (timed) {
        Timer::Get().Cancel(self, gen);
        expired = ConsumeTimeoutWoken(self);
      }
      if (alertable && !expired) {
        SpinGuard tg(self->lock);
        if (self->alert_woken || self->alerted.load(std::memory_order_relaxed)) {
          alert_pending = true;
        }
        self->alert_woken = false;
      }
    }
  }
  DeregisterAll(nodes);
  return out;
}

Poll::Outcome Poll::TracedWait(ThreadRecord* self, bool all, bool alertable,
                               bool timed, std::uint64_t deadline_ns) {
  Nub& nub = Nub::Get();
  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  const spec::ObjIdSet ws = WaitSetIds();

  PollNode nodes[kMaxWait];
  for (std::size_t i = 0; i < n_; ++i) {
    nodes[i].rec = self;
    nodes[i].event = events_[i];
  }

  Outcome out{WaitResult::kSatisfied, n_};
  bool parked = false;
  bool expired = false;
  bool alert_pending = false;
  for (;;) {
    self->poll_latch.store(0, std::memory_order_seq_cst);
    spec::ObjId first_unset = events_[0]->id();
    std::size_t index = n_;
    bool ready = false;
    if (all) {
      // The WHEN-over-a-set hard case: the ∀ test, the consumption of every
      // auto-reset member and the emission are one atomic action under all
      // member locks (every traced consumer also locks, so no rollback
      // transient exists here).
      SpinLock* resolved[kMaxWait];
      for (std::size_t i = 0; i < n_; ++i) {
        resolved[i] = events_[i]->nub_lock_.Resolve();
      }
      LockAllGuard g(resolved, n_);
      for (std::size_t i = 0; i < n_; ++i) {
        events_[i]->RegisterPollerLocked(&nodes[i]);
      }
      ready = true;
      for (std::size_t i = 0; i < n_; ++i) {
        if (events_[i]->set_.load(std::memory_order_relaxed) == 0) {
          ready = false;
          first_unset = events_[i]->id();
          break;
        }
      }
      if (ready) {
        spec::ObjIdSet consumed;
        for (std::size_t i = 0; i < n_; ++i) {
          if (events_[i]->reset_ == EventReset::kAuto) {
            events_[i]->set_.store(0, std::memory_order_relaxed);
            consumed = consumed.Insert(events_[i]->id());
          }
        }
        nub.EmitTraced(spec::MakePollAll(self->id, ws, consumed));
        index = 0;
      }
    } else {
      for (std::size_t i = 0; i < n_; ++i) {
        Event* ev = events_[i];
        NubGuard g(ev->nub_lock_);
        if (ev->set_.load(std::memory_order_relaxed) != 0) {
          // The granted member is the ∃-witness; its lock alone guards
          // everything this action touches.
          const bool consumed = ev->reset_ == EventReset::kAuto;
          if (consumed) {
            ev->set_.store(0, std::memory_order_relaxed);
          }
          nub.EmitTraced(spec::MakePollAny(self->id, ws, ev->id(), consumed));
          ready = true;
          index = i;
          break;
        }
        ev->RegisterPollerLocked(&nodes[i]);
      }
    }
    if (ready) {
      out = {WaitResult::kSatisfied, index};
      break;
    }
    if (parked) {
      obs::Inc(obs::Counter::kPollSpuriousScans);
    }
    if (expired || (timed && obs::NowNanos() >= deadline_ns)) {
      // WaitFor/TIMEOUT: a no-op on the wait set, one atomic action under
      // the record lock (it touches no object state).
      SpinGuard tg(self->lock);
      nub.EmitTraced(spec::MakePollTimeout(self->id, ws));
      out = {WaitResult::kTimeout, n_};
      break;
    }
    if (alert_pending) {
      // WaitAny/RAISES: leaves the alerts set, touches no member.
      SpinGuard tg(self->lock);
      self->alerted.store(false, std::memory_order_relaxed);
      nub.EmitTraced(spec::MakePollAlertRaises(self->id, ws));
      out = {WaitResult::kAlerted, n_};
      break;
    }
    parked = false;
    std::uint64_t gen = 0;
    {
      SpinGuard tg(self->lock);
      if (alertable && self->alerted.load(std::memory_order_relaxed)) {
        alert_pending = true;
      } else if (self->poll_latch.load(std::memory_order_seq_cst) == 0) {
        SetBlockedLocked(self,
                         all ? ThreadRecord::BlockKind::kPollAll
                             : ThreadRecord::BlockKind::kPollAny,
                         this, all ? first_unset : events_[0]->id(),
                         /*obj_lock=*/nullptr, alertable);
        if (timed) {
          gen = ++self->next_timer_gen;
          PublishTimedLocked(self, gen);
        }
        parked = true;
      }
    }
    TAOS_CHAOS(kPollScanToPark);
    if (parked) {
      if (timed) {
        Timer::Get().Arm(self, gen, deadline_ns);
      }
      ParkBlocked(self);
      if (timed) {
        Timer::Get().Cancel(self, gen);
        expired = ConsumeTimeoutWoken(self);
      }
      if (alertable && !expired) {
        SpinGuard tg(self->lock);
        if (self->alert_woken || self->alerted.load(std::memory_order_relaxed)) {
          alert_pending = true;
        }
        self->alert_woken = false;
      }
    }
  }
  DeregisterAll(nodes);
  return out;
}

std::size_t Poll::WaitAny() {
  Outcome out{WaitResult::kSatisfied, 0};
  obs::WithEvent(obs::Op::kPoll, n_ > 0 ? events_[0]->id() : 0, [&] {
    out = WaitInternal(/*all=*/false, /*alertable=*/false, /*timed=*/false, 0);
  });
  return out.index;
}

Poll::AnyResult Poll::WaitAnyFor(std::chrono::nanoseconds timeout) {
  Outcome out{WaitResult::kSatisfied, 0};
  obs::WithEvent(obs::Op::kPoll, n_ > 0 ? events_[0]->id() : 0, [&] {
    const std::uint64_t deadline =
        timeout.count() > 0 ? DeadlineAfter(timeout) : 0;
    out = WaitInternal(/*all=*/false, /*alertable=*/false, /*timed=*/true,
                       deadline);
  });
  obs::Inc(out.result == WaitResult::kSatisfied
               ? obs::Counter::kTimedWaitSatisfied
               : obs::Counter::kTimedWaitTimeouts);
  return {out.index, out.result};
}

std::size_t Poll::AlertWaitAny() {
  Outcome out{WaitResult::kSatisfied, 0};
  obs::WithEvent(obs::Op::kPoll, n_ > 0 ? events_[0]->id() : 0, [&] {
    out = WaitInternal(/*all=*/false, /*alertable=*/true, /*timed=*/false, 0);
  });
  if (out.result == WaitResult::kAlerted) {
    throw Alerted();
  }
  return out.index;
}

Poll::AnyResult Poll::AlertWaitAnyFor(std::chrono::nanoseconds timeout) {
  Outcome out{WaitResult::kSatisfied, 0};
  obs::WithEvent(obs::Op::kPoll, n_ > 0 ? events_[0]->id() : 0, [&] {
    const std::uint64_t deadline =
        timeout.count() > 0 ? DeadlineAfter(timeout) : 0;
    out = WaitInternal(/*all=*/false, /*alertable=*/true, /*timed=*/true,
                       deadline);
  });
  switch (out.result) {
    case WaitResult::kSatisfied:
      obs::Inc(obs::Counter::kTimedWaitSatisfied);
      break;
    case WaitResult::kTimeout:
      obs::Inc(obs::Counter::kTimedWaitTimeouts);
      break;
    case WaitResult::kAlerted:
      obs::Inc(obs::Counter::kTimedWaitAlerted);
      break;
  }
  return {out.index, out.result};
}

void Poll::WaitAll() {
  obs::WithEvent(obs::Op::kPoll, n_ > 0 ? events_[0]->id() : 0, [&] {
    WaitInternal(/*all=*/true, /*alertable=*/false, /*timed=*/false, 0);
  });
}

WaitResult Poll::WaitAllFor(std::chrono::nanoseconds timeout) {
  Outcome out{WaitResult::kSatisfied, 0};
  obs::WithEvent(obs::Op::kPoll, n_ > 0 ? events_[0]->id() : 0, [&] {
    const std::uint64_t deadline =
        timeout.count() > 0 ? DeadlineAfter(timeout) : 0;
    out = WaitInternal(/*all=*/true, /*alertable=*/false, /*timed=*/true,
                       deadline);
  });
  obs::Inc(out.result == WaitResult::kSatisfied
               ? obs::Counter::kTimedWaitSatisfied
               : obs::Counter::kTimedWaitTimeouts);
  return out.result;
}

void Poll::AlertWaitAll() {
  Outcome out{WaitResult::kSatisfied, 0};
  obs::WithEvent(obs::Op::kPoll, n_ > 0 ? events_[0]->id() : 0, [&] {
    out = WaitInternal(/*all=*/true, /*alertable=*/true, /*timed=*/false, 0);
  });
  if (out.result == WaitResult::kAlerted) {
    throw Alerted();
  }
}

WaitResult Poll::AlertWaitAllFor(std::chrono::nanoseconds timeout) {
  Outcome out{WaitResult::kSatisfied, 0};
  obs::WithEvent(obs::Op::kPoll, n_ > 0 ? events_[0]->id() : 0, [&] {
    const std::uint64_t deadline =
        timeout.count() > 0 ? DeadlineAfter(timeout) : 0;
    out = WaitInternal(/*all=*/true, /*alertable=*/true, /*timed=*/true,
                       deadline);
  });
  switch (out.result) {
    case WaitResult::kSatisfied:
      obs::Inc(obs::Counter::kTimedWaitSatisfied);
      break;
    case WaitResult::kTimeout:
      obs::Inc(obs::Counter::kTimedWaitTimeouts);
      break;
    case WaitResult::kAlerted:
      obs::Inc(obs::Counter::kTimedWaitAlerted);
      break;
  }
  return out.result;
}

}  // namespace taos
