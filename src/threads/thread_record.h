// Per-thread control block, the analogue of the Taos Nub's thread records.
//
// A ThreadRecord is on at most one queue at a time (a mutex queue, a
// semaphore queue, a condition queue — there is no explicit ready pool here
// because the host OS schedules runnable threads; "de-schedule this thread"
// becomes parking on a private Parker, and "add to the ready pool" becomes
// unparking it).
//
// All fields below the "guarded by `lock`" line are only touched while
// holding this record's parking-lot lock (which the blocking, waking and
// alerting paths all nest inside the blocked-on object's ObjLock, per the
// ordering discipline in nub.h — except the waiter-queue mode's Alert,
// which needs no object lock at all; see wait_cell below).

#ifndef TAOS_SRC_THREADS_THREAD_RECORD_H_
#define TAOS_SRC_THREADS_THREAD_RECORD_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/base/intrusive_queue.h"
#include "src/base/spinlock.h"
#include "src/obs/diag.h"
#include "src/obs/metrics.h"
#include "src/spec/state.h"
#include "src/waitq/parker.h"
#include "src/waitq/waitq.h"

namespace taos {

class Mutex;
class Condition;
class Semaphore;
class ObjLock;
struct ThreadRecord;

// Intrusive node linking a thread into the timer wheel (src/threads/timer.h)
// while it sits in a timed wait. Every field is guarded by the wheel's own
// lock — never by the record's `lock` — so arming and expiry never contend
// with the blocking protocol itself.
struct TimerNode {
  TimerNode* prev = nullptr;
  TimerNode* next = nullptr;
  std::uint64_t deadline_ns = 0;  // on the obs::NowNanos timeline
  std::uint64_t gen = 0;          // which wait instance armed this node
  int level = 0;                  // which wheel level the node sits in
  bool armed = false;
  ThreadRecord* owner = nullptr;
};

struct ThreadRecord {
  QueueNode queue_node;

  spec::ThreadId id = spec::kNil;

  // "De-scheduled" threads park here; making a thread ready unparks it.
  // The queue discipline guarantees at most one outstanding unpark. The
  // backend (futex / condvar) is the process default; see waitq/parker.h.
  waitq::Parker park;

  // The thread's membership in the spec's global `alerts` set. Set by
  // Alert(t), cleared by TestAlert and by the Alerted-raising paths of
  // AlertP / AlertWait. In spec-tracing mode every access that an emitted
  // action depends on happens under `lock`, so the alert actions serialize.
  std::atomic<bool> alerted{false};

  // The parking-lot lock: guards this record's blocking state against the
  // one operation that cannot reach it through the blocked-on object's
  // ObjLock — Alert(t), which must discover that object from here.
  SpinLock lock;

  // ---- guarded by `lock` ----
  enum class BlockKind : std::uint8_t {
    kNone,
    kMutex,
    kSemaphore,
    kCondition,
    kRwShared,     // ReaderWriterMutex, reader queue
    kRwExclusive,  // ReaderWriterMutex, writer queue
    kEvent,        // Event's plain (single-object) waiter queue
    kPollAny,      // Poll::WaitAny — registered on a *set* of events
    kPollAll,      // Poll::WaitAll — registered on a *set* of events
  };
  BlockKind block_kind = BlockKind::kNone;
  bool alertable = false;    // blocked in AlertP / AlertWait
  bool alert_woken = false;  // dequeued by Alert rather than by V/Signal
  void* blocked_obj = nullptr;  // the Mutex/Semaphore/Condition blocked on
  ObjLock* blocked_lock = nullptr;  // that object's slow-path lock
  // Waiter-queue mode only: the cell this thread is (about to be) parked
  // in. Published under `lock` so Alert can cancel it with one CAS instead
  // of taking the object lock; unpublished (again under `lock`) before the
  // waiter detaches the cell, so a canceller never touches a detached cell.
  waitq::WaitCell* wait_cell = nullptr;
  // Timed-wait state. `timed` marks the current blocked episode as having a
  // deadline and `timer_gen` names which wait instance armed it, so a stale
  // expiry (the waiter already woke, maybe even re-blocked) validates as a
  // no-op under `lock`. `timeout_woken` is the expiry path's receipt: set by
  // the timer thread after it dequeued/cancelled this waiter, read by the
  // waiter after it wakes to pick the kTimeout outcome.
  bool timed = false;
  std::uint64_t timer_gen = 0;
  bool timeout_woken = false;
  // Multi-object wait notification latch (src/threads/poll.h). A poll
  // waiter re-arms it to 0 before each scan of its wait set; an Event::Set
  // that finds this thread registered exchanges it to 1 and, on the 0->1
  // edge only, performs the record-lock unblock dance. Living here (not on
  // the waiter's stack) means granters never dereference stack memory of a
  // thread that may have already returned from WaitAny. Not guarded by
  // `lock` — the seq_cst exchange/store pair is the Dekker publication the
  // protocol's lost-wakeup argument rests on (DESIGN.md §15).
  std::atomic<std::uint32_t> poll_latch{0};

  // This thread's waits-for registry slot (src/obs/diag.h), registered
  // lazily at the first blocking episode. Writes to the slot are seqlock
  // publications serialized by `lock`; the watchdog reads it lock-free.
  obs::diag::WaiterSlot* diag_slot = nullptr;

  // Set when the thread terminated because Alerted escaped its root
  // function (see Thread::Fork).
  std::atomic<bool> ended_by_alert{false};

  // ---- owner-thread private (no lock) ----
  // Source of `timer_gen` values: bumped by the owning thread at the start
  // of each timed wait, before the new value is published under `lock`.
  std::uint64_t next_timer_gen = 0;

  // ---- guarded by the timer wheel's lock ----
  TimerNode timer;

  // ---- statistics (relaxed; for tests and experiments) ----
  std::atomic<std::uint64_t> parks{0};

  ThreadRecord() = default;
  ThreadRecord(const ThreadRecord&) = delete;
  ThreadRecord& operator=(const ThreadRecord&) = delete;
};

// The diag WaitKind enum mirrors BlockKind value-for-value so the publish
// below is a cast, not a mapping (and a new BlockKind fails loudly here).
static_assert(
    static_cast<int>(obs::diag::WaitKind::kNone) ==
            static_cast<int>(ThreadRecord::BlockKind::kNone) &&
        static_cast<int>(obs::diag::WaitKind::kMutex) ==
            static_cast<int>(ThreadRecord::BlockKind::kMutex) &&
        static_cast<int>(obs::diag::WaitKind::kSemaphore) ==
            static_cast<int>(ThreadRecord::BlockKind::kSemaphore) &&
        static_cast<int>(obs::diag::WaitKind::kCondition) ==
            static_cast<int>(ThreadRecord::BlockKind::kCondition) &&
        static_cast<int>(obs::diag::WaitKind::kRwShared) ==
            static_cast<int>(ThreadRecord::BlockKind::kRwShared) &&
        static_cast<int>(obs::diag::WaitKind::kRwExclusive) ==
            static_cast<int>(ThreadRecord::BlockKind::kRwExclusive) &&
        static_cast<int>(obs::diag::WaitKind::kEvent) ==
            static_cast<int>(ThreadRecord::BlockKind::kEvent) &&
        static_cast<int>(obs::diag::WaitKind::kPollAny) ==
            static_cast<int>(ThreadRecord::BlockKind::kPollAny) &&
        static_cast<int>(obs::diag::WaitKind::kPollAll) ==
            static_cast<int>(ThreadRecord::BlockKind::kPollAll),
    "obs::diag::WaitKind must mirror ThreadRecord::BlockKind");

// Blocking-state transitions. The *Locked variants require t->lock held;
// the Mark* variants take it, nested inside the blocked-on object's ObjLock
// which every caller already holds (ordering rule 1 in nub.h). `obj_id` is
// the blocked-on object's spec id (0 for baselines without one): it feeds
// the waits-for registry, which must name objects by id, never by pointer
// (see the teardown-safety note in src/obs/diag.h).
inline void SetBlockedLocked(ThreadRecord* t, ThreadRecord::BlockKind kind,
                             void* obj, spec::ObjId obj_id, ObjLock* obj_lock,
                             bool alertable) {
  t->block_kind = kind;
  t->blocked_obj = obj;
  t->blocked_lock = obj_lock;
  t->alertable = alertable;
  t->alert_woken = false;
  if (t->diag_slot == nullptr) [[unlikely]] {
    t->diag_slot = obs::diag::RegisterWaiterSlot(t->id);
  }
  obs::diag::PublishBlocked(t->diag_slot,
                            static_cast<obs::diag::WaitKind>(kind), obj_id,
                            obs::NowNanos(), alertable);
}

inline void ClearBlockedLocked(ThreadRecord* t) {
  t->block_kind = ThreadRecord::BlockKind::kNone;
  t->blocked_obj = nullptr;
  t->blocked_lock = nullptr;
  t->alertable = false;
  t->wait_cell = nullptr;
  // A dequeuer (granter, alerter or the timer) that unblocks this record
  // also invalidates its deadline; `timeout_woken` is NOT cleared here —
  // the timer sets it right after this call and the waiter consumes it.
  t->timed = false;
  if (t->diag_slot != nullptr) {
    obs::diag::ClearBlocked(t->diag_slot);
  }
}

inline void MarkBlocked(ThreadRecord* t, ThreadRecord::BlockKind kind,
                        void* obj, spec::ObjId obj_id, ObjLock* obj_lock,
                        bool alertable) {
  SpinGuard g(t->lock);
  SetBlockedLocked(t, kind, obj, obj_id, obj_lock, alertable);
}

inline void MarkUnblocked(ThreadRecord* t) {
  SpinGuard g(t->lock);
  ClearBlockedLocked(t);
}

// Marks the blocked episode being published in this same critical section
// (t->lock held) as having a deadline. Clearing timeout_woken here is what
// makes a leftover receipt from an earlier episode harmless: the only reads
// are after an episode that published first.
inline void PublishTimedLocked(ThreadRecord* t, std::uint64_t gen) {
  t->timed = true;
  t->timer_gen = gen;
  t->timeout_woken = false;
}

// The waiter's post-wake read of the expiry receipt, cleared for the next
// episode. Returns true iff the timer thread is what dequeued this waiter.
inline bool ConsumeTimeoutWoken(ThreadRecord* t) {
  SpinGuard g(t->lock);
  const bool expired = t->timeout_woken;
  t->timeout_woken = false;
  return expired;
}

// "De-schedule this thread": park on the private parker, counting the
// park and feeding the de-scheduled duration into the blocked-time
// histogram. Every blocking site in src/threads goes through here.
inline void ParkBlocked(ThreadRecord* t) {
  // The window between publishing the blocked edge and the deschedule: a
  // watchdog snapshot here sees a thread "blocked" that has not parked yet.
  TAOS_CHAOS(kDiagPublishToPark);
  t->parks.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t start = obs::NowNanos();
  t->park.Park();
  obs::Record(obs::Histogram::kBlockedNanos, obs::NowNanos() - start);
}

// --- waiter-queue (TAOS_WAITQ) blocking protocol helpers ---

// Publishes the blocked state plus the claimed cell and installs the
// parker, all under t->lock (already held by the caller). Returns true if
// the thread must park; false if a resume or cancel beat the Install (the
// cell is unpublished again and the thread proceeds without parking).
inline bool InstallBlockedLocked(ThreadRecord* t, waitq::WaitCell* cell,
                                 ThreadRecord::BlockKind kind, void* obj,
                                 spec::ObjId obj_id, ObjLock* obj_lock,
                                 bool alertable) {
  SetBlockedLocked(t, kind, obj, obj_id, obj_lock, alertable);
  t->wait_cell = cell;
  if (cell->Install(&t->park, t)) {
    return true;
  }
  ClearBlockedLocked(t);
  return false;
}

// The waiter's epilogue for a claimed cell: reads the terminal state,
// unpublishes whatever is still published (a resumer never touches the
// record; an alerter already cleared it), and detaches the cell — the
// claimant's last touch. Returns the terminal state (kResumed or
// kCancelled).
inline waitq::WaitCell::State FinishWaitCell(ThreadRecord* t,
                                             waitq::WaitCell* cell) {
  const waitq::WaitCell::State st = cell->state();
  {
    SpinGuard g(t->lock);
    if (t->wait_cell == cell) {
      ClearBlockedLocked(t);
    }
  }
  waitq::WaitQueue::Detach(cell);
  return st;
}

// Opaque handle clients use to name a thread (e.g. Alert(t)).
struct ThreadHandle {
  ThreadRecord* rec = nullptr;

  spec::ThreadId id() const { return rec ? rec->id : spec::kNil; }
  bool operator==(const ThreadHandle&) const = default;
};

}  // namespace taos

#endif  // TAOS_SRC_THREADS_THREAD_RECORD_H_
