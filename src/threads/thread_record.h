// Per-thread control block, the analogue of the Taos Nub's thread records.
//
// A ThreadRecord is on at most one queue at a time (a mutex queue, a
// semaphore queue, a condition queue — there is no explicit ready pool here
// because the host OS schedules runnable threads; "de-schedule this thread"
// becomes parking on a private binary semaphore, and "add to the ready pool"
// becomes releasing it).
//
// All fields below the "guarded by the Nub spin-lock" line are only touched
// while holding the global Nub spin-lock.

#ifndef TAOS_SRC_THREADS_THREAD_RECORD_H_
#define TAOS_SRC_THREADS_THREAD_RECORD_H_

#include <atomic>
#include <cstdint>
#include <semaphore>
#include <string>

#include "src/base/intrusive_queue.h"
#include "src/spec/state.h"

namespace taos {

class Mutex;
class Condition;
class Semaphore;

struct ThreadRecord {
  QueueNode queue_node;

  spec::ThreadId id = spec::kNil;

  // "De-scheduled" threads park here; making a thread ready releases it.
  // The queue discipline guarantees at most one outstanding release.
  std::binary_semaphore park{0};

  // The thread's membership in the spec's global `alerts` set. Set by
  // Alert(t) (under the Nub spin-lock when an unblock may be needed), cleared
  // by TestAlert and by the Alerted-raising paths of AlertP / AlertWait.
  std::atomic<bool> alerted{false};

  // ---- guarded by the Nub spin-lock ----
  enum class BlockKind : std::uint8_t { kNone, kMutex, kSemaphore, kCondition };
  BlockKind block_kind = BlockKind::kNone;
  bool alertable = false;    // blocked in AlertP / AlertWait
  bool alert_woken = false;  // dequeued by Alert rather than by V/Signal
  void* blocked_obj = nullptr;  // the Mutex/Semaphore/Condition blocked on

  // Set when the thread terminated because Alerted escaped its root
  // function (see Thread::Fork).
  std::atomic<bool> ended_by_alert{false};

  // ---- statistics (relaxed; for tests and experiments) ----
  std::atomic<std::uint64_t> parks{0};

  ThreadRecord() = default;
  ThreadRecord(const ThreadRecord&) = delete;
  ThreadRecord& operator=(const ThreadRecord&) = delete;
};

// Opaque handle clients use to name a thread (e.g. Alert(t)).
struct ThreadHandle {
  ThreadRecord* rec = nullptr;

  spec::ThreadId id() const { return rec ? rec->id : spec::kNil; }
  bool operator==(const ThreadHandle&) const = default;
};

}  // namespace taos

#endif  // TAOS_SRC_THREADS_THREAD_RECORD_H_
