#include "src/threads/nub.h"

#include <cstdlib>
#include <cstring>

#include "src/base/check.h"
#include "src/threads/timer.h"

namespace taos {

namespace {
thread_local ThreadRecord* tls_record = nullptr;

bool GlobalLockModeFromEnv() {
  const char* v = std::getenv("TAOS_NUB_GLOBAL_LOCK");
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

bool WaitqModeFromEnv() {
  const char* v = std::getenv("TAOS_WAITQ");
  if (v == nullptr) {
#if defined(TAOS_WAITQ_DEFAULT)
    return true;
#else
    return false;
#endif
  }
  return *v != '\0' && std::strcmp(v, "0") != 0;
}
}  // namespace

Nub::Nub() {
  global_lock_mode_.store(GlobalLockModeFromEnv());
  waitq_mode_.store(WaitqModeFromEnv());
}

Nub& Nub::Get() {
  static Nub* nub = new Nub();  // intentionally leaked; records must outlive
                                // any late thread exit
  return *nub;
}

void Nub::SetLockBackend(LockBackend b) {
  // The timer thread takes the wheel lock on every tick and record/object
  // locks during expiry, and cannot be joined; park it at its gate (where it
  // holds no SpinLock) for the duration of the switch.
  Timer* timer = Timer::InstanceIfStarted();
  if (timer != nullptr) {
    timer->PauseForBackendSwitch();
  }
  SpinLock::SetBackend(b);
  if (timer != nullptr) {
    timer->ResumeAfterBackendSwitch();
  }
}

ThreadRecord* Nub::CreateRecord() {
  auto rec = std::make_unique<ThreadRecord>();
  rec->id = next_thread_id_.fetch_add(1, std::memory_order_relaxed);
  ThreadRecord* raw = rec.get();
  {
    SpinGuard g(registry_lock_);
    registry_.push_back(std::move(rec));
  }
  return raw;
}

void Nub::AdoptRecord(ThreadRecord* rec) {
  TAOS_CHECK(tls_record == nullptr || tls_record == rec);
  tls_record = rec;
}

ThreadRecord* Nub::Current() {
  if (tls_record == nullptr) {
    tls_record = CreateRecord();
  }
  return tls_record;
}

ThreadRecord* Nub::RecordFor(spec::ThreadId id) {
  SpinGuard g(registry_lock_);
  for (const auto& rec : registry_) {
    if (rec->id == id) {
      return rec.get();
    }
  }
  return nullptr;
}

}  // namespace taos
