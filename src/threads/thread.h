// Thread creation and control.
//
// The Threads package "implements a Modula-2+ interface for creating and
// controlling a virtually unlimited number of threads". This reproduction
// layers thread creation on host OS threads (the Firefly scheduler that
// multiplexed threads onto processors is reproduced separately, in
// src/firefly); what matters to the synchronization spec is only each
// thread's identity (SELF) and its record in the Nub.

#ifndef TAOS_SRC_THREADS_THREAD_H_
#define TAOS_SRC_THREADS_THREAD_H_

#include <functional>
#include <thread>

#include "src/threads/thread_record.h"

namespace taos {

class Thread {
 public:
  Thread() = default;
  Thread(Thread&&) = default;
  Thread& operator=(Thread&&) = default;
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  // Joins if the thread is still running (TRY ... FINALLY discipline: a
  // Thread going out of scope never leaves a runaway OS thread).
  ~Thread();

  // Creates a new thread executing fn. An Alerted exception propagating out
  // of fn terminates the thread quietly and marks it EndedByAlert.
  static Thread Fork(std::function<void()> fn);

  // Waits for the thread to finish.
  void Join();

  bool Joinable() const { return os_.joinable(); }

  // Handle usable with Alert(t). Valid for the life of the process.
  ThreadHandle Handle() const { return ThreadHandle{rec_}; }

  // The calling thread's own handle.
  static ThreadHandle Self();

  // True once the thread terminated because Alerted escaped its root
  // function.
  bool EndedByAlert() const;

 private:
  Thread(ThreadRecord* rec, std::thread os)
      : rec_(rec), os_(std::move(os)) {}

  ThreadRecord* rec_ = nullptr;
  std::thread os_;
};

}  // namespace taos

#endif  // TAOS_SRC_THREADS_THREAD_H_
