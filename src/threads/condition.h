// Condition variables: Wait / Signal / Broadcast.
//
// Specification (SRC Report 20):
//
//   TYPE Condition = SET OF Thread INITIALLY {}
//   PROCEDURE Wait(VAR m: Mutex; VAR c: Condition) =
//     COMPOSITION OF Enqueue; Resume END
//     REQUIRES m = SELF  MODIFIES AT MOST [m, c]
//     ATOMIC ACTION Enqueue  ENSURES (cpost = insert(c, SELF)) & (mpost = NIL)
//     ATOMIC ACTION Resume   WHEN (m = NIL) & (SELF NOT-IN c)
//                            ENSURES mpost = SELF & UNCHANGED [c]
//   ATOMIC PROCEDURE Signal(VAR c)    ENSURES (cpost = {}) | (cpost PROPER-SUBSET c)
//   ATOMIC PROCEDURE Broadcast(VAR c) ENSURES cpost = {}
//
// Return from Wait is a hint: the caller re-evaluates its predicate and may
// Wait again (Mesa semantics, not Hoare's).
//
// Implementation (the paper's): a condition variable is a pair
// (Eventcount, Queue). Wait reads the eventcount, releases the mutex, then
// calls the Nub subroutine Block(c, i): under the spin-lock, if the
// eventcount still equals i the thread is queued and de-scheduled, otherwise
// a Signal/Broadcast intervened and Block returns at once. Signal/Broadcast
// increment the eventcount and unblock one/all queued threads. The
// eventcount closes the wakeup-waiting race and is why Signal may unblock
// more than one thread (every thread in the read-eventcount → Block window
// absorbs the same increment).
//
// Departure from the paper (documented in DESIGN.md): waiters_ counts the
// threads between their eventcount read and their wakeup, incremented before
// the mutex is released, so the user-code "no threads to unblock" fast path
// of Signal/Broadcast cannot miss a waiter that is still on its way into
// Block.

#ifndef TAOS_SRC_THREADS_CONDITION_H_
#define TAOS_SRC_THREADS_CONDITION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "src/base/eventcount.h"
#include "src/base/intrusive_queue.h"
#include "src/threads/mutex.h"
#include "src/threads/thread_record.h"
#include "src/threads/wait_result.h"
#include "src/waitq/waitq.h"

namespace taos {

class Condition {
 public:
  Condition();
  ~Condition();
  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  // Atomically releases m (ending the critical section) and suspends the
  // calling thread; returns inside a new critical section on m. The caller
  // must hold m and must re-evaluate its predicate on return.
  void Wait(Mutex& m);

  // Wait with a deadline: kSatisfied after a Signal/Broadcast wakeup,
  // kTimeout once `timeout` elapsed first. Either way the mutex is held
  // again on return (on the timeout path the caller re-acquires before
  // returning, like the spec's TimeoutResume action), and the caller must
  // re-evaluate its predicate — a kTimeout may race a just-missed Signal,
  // and Mesa semantics already force the re-check. A nonpositive timeout
  // returns kTimeout immediately without releasing m. A signal that
  // dequeues this thread always wins a race with the deadline.
  WaitResult WaitFor(Mutex& m, std::chrono::nanoseconds timeout);

  // Unblocks at least one waiting thread, if any are waiting. May unblock
  // more than one.
  void Signal();

  // Unblocks all waiting threads.
  void Broadcast();

  spec::ObjId id() const { return id_; }

  // Benchmark-only entry point (E2 ablation): the Nub path of Signal —
  // spin-lock, eventcount advance, queue inspection — taken
  // unconditionally, as every Signal would without the user-code
  // no-waiters gate. Semantically a valid Signal.
  void SignalNubPathForBench() { NubSignal(); }

  // --- statistics (relaxed counters) ---
  std::uint64_t fast_signals() const {
    return fast_signals_.load(std::memory_order_relaxed);
  }
  std::uint64_t nub_signals() const {
    return nub_signals_.load(std::memory_order_relaxed);
  }
  // Waits that returned from Block without sleeping because a Signal or
  // Broadcast intervened in the window (the "extra" threads a Signal
  // unblocks).
  std::uint64_t absorbed_wakeups() const {
    return absorbed_.load(std::memory_order_relaxed);
  }
  void ResetStats() {
    fast_signals_.store(0, std::memory_order_relaxed);
    nub_signals_.store(0, std::memory_order_relaxed);
    absorbed_.store(0, std::memory_order_relaxed);
  }

 private:
  friend class Timer;
  friend void Alert(ThreadHandle t);
  friend void AlertWait(Mutex& m, Condition& c);
  friend WaitResult AlertWaitFor(Mutex& m, Condition& c,
                                 std::chrono::nanoseconds timeout);

  // Nub subroutine Block(c, i): sleep unless the eventcount moved past i.
  void Block(ThreadRecord* self, EventCount::Value i);
  // Block with a deadline; returns true iff the wait ended by expiry.
  bool BlockFor(ThreadRecord* self, EventCount::Value i,
                std::uint64_t deadline_ns);
  void NubSignal();
  void NubBroadcast();

  // Traced (spec-emitting) paths.
  void TracedWait(Mutex& m, ThreadRecord* self);
  WaitResult TracedWaitFor(Mutex& m, ThreadRecord* self,
                           std::uint64_t deadline_ns);
  void TracedSignal(ThreadRecord* self);
  void TracedBroadcast(ThreadRecord* self);
  bool EraseWindow(ThreadRecord* rec);          // nub_lock_ held
  bool ErasePendingRaise(ThreadRecord* rec);    // nub_lock_ held
  bool ErasePendingTimeout(ThreadRecord* rec);  // nub_lock_ held

  EventCount ec_;
  ObjLock nub_lock_;  // guards queue_, window_, pending_raise_
  IntrusiveQueue<ThreadRecord> queue_;  // classic backend
  waitq::WaitQueue wqueue_;             // waiter-queue backend (TAOS_WAITQ)
  std::atomic<std::int32_t> waiters_{0};
  spec::ObjId id_;

  // Traced-mode bookkeeping (guarded by nub_lock_): threads between their
  // Enqueue action and their entry into Block (the wakeup-waiting window),
  // threads that have committed to raising Alerted but are still members of
  // the spec-level set c, and threads the timer dequeued whose
  // TimeoutResume action has not yet fired (still spec-members likewise).
  std::vector<ThreadRecord*> window_;
  std::vector<ThreadRecord*> pending_raise_;
  std::vector<ThreadRecord*> pending_timeout_;

  std::atomic<std::uint64_t> fast_signals_{0};
  std::atomic<std::uint64_t> nub_signals_{0};
  std::atomic<std::uint64_t> absorbed_{0};
};

}  // namespace taos

#endif  // TAOS_SRC_THREADS_CONDITION_H_
