#include "src/threads/alert.h"

#include "src/base/chaos.h"
#include "src/base/check.h"
#include "src/obs/metrics.h"
#include "src/obs/recorder.h"
#include "src/spec/action.h"
#include "src/threads/nub.h"
#include "src/threads/timer.h"

namespace taos {

// Alert is the one operation that reaches a synchronization object through a
// thread record instead of the other way around, so it runs the ordering
// discipline backwards (rule 3 in nub.h): take t's record lock, learn what t
// is blocked on, then TRY-acquire that object's lock. On failure the record
// lock is released and the whole inspection retried — the object lock's
// holder may be concurrently waking t, and will need t's record lock to do
// it. While the record lock is held and t is observed blocked on the object,
// the object cannot be destroyed (t has not returned from its blocking
// call), so the try-acquire never touches freed memory.
void Alert(ThreadHandle h) {
  TAOS_CHECK(h.rec != nullptr);
  obs::ScopedEvent ev(obs::Op::kAlert, h.rec->id);
  obs::Inc(obs::Counter::kNubAlert);
  Nub& nub = Nub::Get();
  ThreadRecord* self = nub.Current();
  ThreadRecord* t = h.rec;

  if (!nub.tracing() && nub.waitq_mode()) {
    // Waiter-queue mode, production: Alert needs no object lock at all.
    // Cancelling the published cell is one CAS; losing that CAS means a
    // V/Signal resume is already in flight, and the flag alone suffices
    // (exactly the classic behaviour when Alert runs after the dequeue).
    // The blocked_obj dereference is safe for the usual rule-3 reason:
    // while t's record lock is held and t is observed blocked, t has not
    // returned from its blocking call, so the object is alive.
    waitq::Parker* unpark = nullptr;
    t->lock.Acquire();
    t->alerted.store(true, std::memory_order_seq_cst);
    // The Alert-vs-grant window: the cancel CAS below races a V/Signal
    // resume on the same cell.
    TAOS_CHAOS(kAlertFlagToCancel);
    if ((t->block_kind == ThreadRecord::BlockKind::kPollAny ||
         t->block_kind == ThreadRecord::BlockKind::kPollAll) &&
        t->alertable) {
      // Alertable Poll waiters publish no cell and no object lock: the
      // record lock alone covers their blocked state (the notify-latch
      // protocol, src/threads/poll.cc). Dequeue = clear + receipt + unpark;
      // the waiter re-scans once, then raises/returns kAlerted.
      t->alert_woken = true;
      ClearBlockedLocked(t);
      unpark = &t->park;
    } else if (t->block_kind != ThreadRecord::BlockKind::kNone &&
               t->alertable &&
        t->wait_cell != nullptr &&
        t->wait_cell->Cancel() == waitq::WaitCell::CancelOutcome::kCancelled) {
      switch (t->block_kind) {
        case ThreadRecord::BlockKind::kSemaphore:
          static_cast<Semaphore*>(t->blocked_obj)
              ->queue_len_.fetch_sub(1, std::memory_order_relaxed);
          break;
        case ThreadRecord::BlockKind::kCondition:
          static_cast<Condition*>(t->blocked_obj)
              ->waiters_.fetch_sub(1, std::memory_order_relaxed);
          break;
        case ThreadRecord::BlockKind::kMutex:
        case ThreadRecord::BlockKind::kRwShared:
        case ThreadRecord::BlockKind::kRwExclusive:
        case ThreadRecord::BlockKind::kEvent:  // Event::Wait is never alertable
        case ThreadRecord::BlockKind::kPollAny:
        case ThreadRecord::BlockKind::kPollAll:  // handled above
        case ThreadRecord::BlockKind::kNone:
          TAOS_PANIC("alertable thread blocked on a mutex");
      }
      t->alert_woken = true;
      ClearBlockedLocked(t);
      unpark = &t->park;
    }
    t->lock.Release();
    if (unpark != nullptr) {
      obs::Inc(obs::Counter::kHandoffs);
      unpark->Unpark();
    }
    return;
  }

  for (;;) {
    t->lock.Acquire();
    if (t->block_kind == ThreadRecord::BlockKind::kNone || !t->alertable) {
      // Not alertably blocked: just record the pending alert. The emission
      // under t's record lock serializes this action against the alerted
      // checks in TestAlert / AlertWait / AlertP, which hold the same lock.
      t->alerted.store(true, std::memory_order_seq_cst);
      if (nub.tracing()) {
        nub.EmitTraced(spec::MakeAlert(self->id, t->id));
      }
      t->lock.Release();
      return;
    }
    if (t->block_kind == ThreadRecord::BlockKind::kPollAny ||
        t->block_kind == ThreadRecord::BlockKind::kPollAll) {
      // Alertable Poll waiters publish no object lock: the record lock
      // alone covers their blocked state (the notify-latch protocol,
      // src/threads/poll.cc), so no rule-3 try-lock dance is needed.
      t->alerted.store(true, std::memory_order_relaxed);
      t->alert_woken = true;
      ClearBlockedLocked(t);
      if (nub.tracing()) {
        nub.EmitTraced(spec::MakeAlert(self->id, t->id));
      }
      t->lock.Release();
      obs::Inc(obs::Counter::kHandoffs);
      t->park.Unpark();
      return;
    }
    SpinLock* obj_lock = t->blocked_lock->Resolve();
    if (!obj_lock->TryAcquire()) {
      t->lock.Release();
      TAOS_CHAOS(kAlertLockRetry);
      // obj_lock may dangle from here on — the record lock is gone, so its
      // holder can wake t and the object can be destroyed. Rule3Backoff
      // yields without peeking at it, which also gives that holder (likely
      // spinning for t's record lock) the window a bare pause never did.
      Rule3Backoff();
      continue;
    }
    // Both locks held: set the flag, dequeue and wake t — one atomic action.
    // (Setting alerted on a failed iteration instead would let t consume the
    // alert and emit its Raises action before this Alert's own emission.)
    t->alerted.store(true, std::memory_order_relaxed);
    TAOS_CHAOS(kAlertFlagToCancel);
    if (nub.waitq_mode()) {
      // Traced run on the waiter-queue backend: the dequeue is a cancel CAS
      // on t's published cell. Losing it means a resume — emitted earlier
      // under this same object lock — is in flight and t has not yet
      // cleaned up; deliver the flag only, like the not-blocked branch.
      TAOS_CHECK(t->wait_cell != nullptr);
      if (t->wait_cell->Cancel() !=
          waitq::WaitCell::CancelOutcome::kCancelled) {
        nub.EmitTraced(spec::MakeAlert(self->id, t->id));
        obj_lock->Release();
        t->lock.Release();
        return;
      }
    }
    switch (t->block_kind) {
      case ThreadRecord::BlockKind::kSemaphore: {
        auto* s = static_cast<Semaphore*>(t->blocked_obj);
        if (!nub.waitq_mode()) {
          s->queue_.Remove(t);
        }
        s->queue_len_.fetch_sub(1, std::memory_order_relaxed);
        break;
      }
      case ThreadRecord::BlockKind::kCondition: {
        auto* c = static_cast<Condition*>(t->blocked_obj);
        if (!nub.waitq_mode()) {
          c->queue_.Remove(t);
        }
        if (nub.tracing()) {
          // The alerted thread will raise; it stays a spec-member of c
          // until its AlertResume action fires (corrected AlertWait
          // semantics), so a Signal in between may still remove it.
          c->pending_raise_.push_back(t);
        } else {
          c->waiters_.fetch_sub(1, std::memory_order_relaxed);
        }
        break;
      }
      case ThreadRecord::BlockKind::kMutex:
      case ThreadRecord::BlockKind::kRwShared:
      case ThreadRecord::BlockKind::kRwExclusive:
      case ThreadRecord::BlockKind::kEvent:  // Event::Wait is never alertable
      case ThreadRecord::BlockKind::kPollAny:
      case ThreadRecord::BlockKind::kPollAll:  // handled above
      case ThreadRecord::BlockKind::kNone:
        TAOS_PANIC("alertable thread blocked on a mutex");
    }
    ClearBlockedLocked(t);
    t->alert_woken = true;
    if (nub.tracing()) {
      nub.EmitTraced(spec::MakeAlert(self->id, t->id));
    }
    obj_lock->Release();
    t->lock.Release();
    obs::Inc(obs::Counter::kHandoffs);
    t->park.Unpark();
    return;
  }
}

bool TestAlert() {
  Nub& nub = Nub::Get();
  ThreadRecord* self = nub.Current();
  if (nub.tracing()) {
    SpinGuard g(self->lock);
    const bool b = self->alerted.exchange(false, std::memory_order_relaxed);
    nub.EmitTraced(spec::MakeTestAlert(self->id, b));
    return b;
  }
  return self->alerted.exchange(false, std::memory_order_seq_cst);
}

void AlertWait(Mutex& m, Condition& c) {
  obs::ScopedEvent ev(obs::Op::kAlertWait, c.id_);
  obs::Inc(obs::Counter::kNubAlertWait);
  Nub& nub = Nub::Get();
  ThreadRecord* self = nub.Current();
  // REQUIRES m = SELF.
  TAOS_CHECK(m.holder_.load(std::memory_order_relaxed) == self->id);

  if (nub.tracing()) {
    // --- Traced (spec-emitting) path ---
    // Atomic action Enqueue (AlertWait flavour: UNCHANGED [alerts]). It
    // touches both m and c, so both ObjLocks are held.
    EventCount::Value snapshot = 0;
    ThreadRecord* wake = nullptr;
    {
      NubGuard2 g(m.nub_lock_, &c.nub_lock_);
      snapshot = c.ec_.Read();
      wake = m.TracedReleaseLocked(self, /*emit_release=*/false);
      c.window_.push_back(self);
      nub.EmitTraced(spec::MakeAlertEnqueue(self->id, m.id_, c.id_));
    }
    if (wake != nullptr) {
      obs::Inc(obs::Counter::kHandoffs);
      wake->park.Unpark();
    }

    // AlertBlock: like Block(c, i) but responsive to alerts. The record
    // lock is held across the alerted check AND the block-state
    // publication, so an Alert cannot slip between them (it would see "not
    // blocked", leave only the flag, and strand us parked).
    waitq::WaitCell* cell = nullptr;
    bool parked = false;
    bool raise = false;
    {
      NubGuard g(c.nub_lock_);
      SpinGuard sg(self->lock);
      if (self->alerted.load(std::memory_order_relaxed)) {
        raise = true;
        if (c.EraseWindow(self)) {
          // Still a member of c until the AlertResume action fires.
          c.pending_raise_.push_back(self);
        }
      } else if (c.ec_.Read() != snapshot) {
        // Absorbed by an intervening Signal/Broadcast (which removed us
        // from c when it emitted): resume normally.
        c.absorbed_.fetch_add(1, std::memory_order_relaxed);
        obs::Inc(obs::Counter::kWakeupWaitingHits);
      } else {
        TAOS_CHECK(c.EraseWindow(self));
        if (nub.waitq_mode()) {
          cell = c.wqueue_.Enqueue();
          // Cannot fail: resumers hold c's ObjLock, which we hold.
          TAOS_CHECK(InstallBlockedLocked(self, cell,
                                          ThreadRecord::BlockKind::kCondition,
                                          &c, c.id(), &c.nub_lock_,
                                          /*alertable=*/true));
        } else {
          c.queue_.PushBack(self);
          SetBlockedLocked(self, ThreadRecord::BlockKind::kCondition, &c, c.id(),
                           &c.nub_lock_, /*alertable=*/true);
        }
        parked = true;
      }
    }
    if (parked) {
      ParkBlocked(self);
      if (cell != nullptr) {
        FinishWaitCell(self, cell);
      }
      // Woken either by Alert (alert_woken, already in pending_raise_) or
      // by Signal/Broadcast (removed from c). If an alert is pending in
      // either case, this implementation chooses to raise — the spec
      // permits either outcome when both WHEN clauses hold.
      SpinGuard sg(self->lock);
      raise = self->alert_woken ||
              self->alerted.load(std::memory_order_relaxed);
    }

    if (raise) {
      // Atomic action AlertResume / RAISES: regain m, leave c and alerts.
      // The action touches m, c and the alert flag, so TracedAcquire takes
      // c's lock alongside m's on every attempt and runs the callback with
      // self's record lock also held.
      Condition* cp = &c;
      m.TracedAcquire(self,
                      spec::MakeAlertResumeRaises(self->id, m.id_, c.id_),
                      &c.nub_lock_, [cp, self] {
                        cp->ErasePendingRaise(self);
                        self->alerted.store(false, std::memory_order_relaxed);
                        self->alert_woken = false;
                      });
      throw Alerted();
    }
    // Atomic action AlertResume / RETURNS.
    m.TracedAcquire(self, spec::MakeAlertResumeReturns(self->id, m.id_, c.id_),
                    nullptr, [self] { self->alert_woken = false; });
    return;
  }

  // --- Production path ---
  const EventCount::Value i = c.ec_.Read();
  c.waiters_.fetch_add(1, std::memory_order_seq_cst);
  m.Release();

  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  bool parked = false;
  bool raise = false;
  if (nub.waitq_mode()) {
    // As in Condition::Block, the cell claim (before the eventcount
    // re-read) is the Dekker pairing with Signal's advance-then-scan. The
    // record lock is held across the alerted check and the install so an
    // Alert cannot slip between them.
    waitq::WaitCell* cell = c.wqueue_.Enqueue();
    {
      SpinGuard sg(self->lock);
      // Stalling with the record lock held stretches the check-to-install
      // window an Alert must not be able to slip through.
      TAOS_CHAOS(kAlertWaitWindow);
      if (self->alerted.load(std::memory_order_relaxed)) {
        raise = true;
        if (cell->Cancel() == waitq::WaitCell::CancelOutcome::kCancelled) {
          c.waiters_.fetch_sub(1, std::memory_order_relaxed);
        }
        // Cancel lost: a signaller consumed the claim (and decremented
        // waiters_). Both an alert and a signal were delivered; raising is
        // the outcome this implementation picks, which the spec permits.
      } else if (c.ec_.Read() != i) {
        if (cell->Cancel() == waitq::WaitCell::CancelOutcome::kCancelled) {
          c.waiters_.fetch_sub(1, std::memory_order_relaxed);
          c.absorbed_.fetch_add(1, std::memory_order_relaxed);
          obs::Inc(obs::Counter::kWakeupWaitingHits);
        }
      } else {
        parked = InstallBlockedLocked(self, cell,
                                      ThreadRecord::BlockKind::kCondition, &c, c.id(),
                                      &c.nub_lock_, /*alertable=*/true);
      }
    }
    if (parked) {
      ParkBlocked(self);
      // A cancelled cell means Alert dequeued us (it set alert_woken); a
      // resumed one means Signal/Broadcast did. Either way pick up a
      // pending alert, as the classic path does.
      raise =
          FinishWaitCell(self, cell) == waitq::WaitCell::State::kCancelled;
      SpinGuard sg(self->lock);
      raise = raise || self->alert_woken ||
              self->alerted.load(std::memory_order_relaxed);
    } else {
      waitq::WaitQueue::Detach(cell);
    }
    m.Acquire();
    {
      SpinGuard sg(self->lock);
      self->alert_woken = false;
      if (raise) {
        self->alerted.store(false, std::memory_order_relaxed);
      }
    }
    if (raise) {
      throw Alerted();
    }
    return;
  }
  {
    NubGuard g(c.nub_lock_);
    SpinGuard sg(self->lock);
    TAOS_CHAOS(kAlertWaitWindow);
    if (self->alerted.load(std::memory_order_relaxed)) {
      raise = true;
      c.waiters_.fetch_sub(1, std::memory_order_relaxed);
    } else if (c.ec_.Read() == i) {
      c.queue_.PushBack(self);
      SetBlockedLocked(self, ThreadRecord::BlockKind::kCondition, &c, c.id(),
                       &c.nub_lock_, /*alertable=*/true);
      parked = true;
    } else {
      c.waiters_.fetch_sub(1, std::memory_order_relaxed);
      c.absorbed_.fetch_add(1, std::memory_order_relaxed);
      obs::Inc(obs::Counter::kWakeupWaitingHits);
    }
  }
  if (parked) {
    ParkBlocked(self);
    SpinGuard sg(self->lock);
    raise = self->alert_woken ||
            self->alerted.load(std::memory_order_relaxed);
  }

  m.Acquire();
  {
    SpinGuard sg(self->lock);
    self->alert_woken = false;
    if (raise) {
      self->alerted.store(false, std::memory_order_relaxed);
    }
  }
  if (raise) {
    throw Alerted();
  }
}

WaitResult AlertWaitFor(Mutex& m, Condition& c,
                        std::chrono::nanoseconds timeout) {
  obs::ScopedEvent ev(obs::Op::kAlertWait, c.id_);
  obs::Inc(obs::Counter::kNubAlertWait);
  Nub& nub = Nub::Get();
  ThreadRecord* self = nub.Current();
  // REQUIRES m = SELF.
  TAOS_CHECK(m.holder_.load(std::memory_order_relaxed) == self->id);

  WaitResult result = WaitResult::kSatisfied;
  if (timeout.count() <= 0) {
    // Deadline already passed: no enqueue, no actions, m stays held, and a
    // pending alert stays pending (the kTimeout outcome never consumes one).
    result = WaitResult::kTimeout;
  } else if (nub.tracing()) {
    // --- Traced (spec-emitting) path ---
    const std::uint64_t deadline = DeadlineAfter(timeout);
    // Atomic action AlertEnqueue, exactly as in AlertWait.
    EventCount::Value snapshot = 0;
    ThreadRecord* wake = nullptr;
    {
      NubGuard2 g(m.nub_lock_, &c.nub_lock_);
      snapshot = c.ec_.Read();
      wake = m.TracedReleaseLocked(self, /*emit_release=*/false);
      c.window_.push_back(self);
      nub.EmitTraced(spec::MakeAlertEnqueue(self->id, m.id_, c.id_));
    }
    if (wake != nullptr) {
      obs::Inc(obs::Counter::kHandoffs);
      wake->park.Unpark();
    }

    // AlertBlock with a deadline: as in AlertWait, the record lock covers
    // the alerted check and the block-state publication together.
    waitq::WaitCell* cell = nullptr;
    bool parked = false;
    bool raise = false;
    std::uint64_t gen = 0;
    {
      NubGuard g(c.nub_lock_);
      SpinGuard sg(self->lock);
      if (self->alerted.load(std::memory_order_relaxed)) {
        raise = true;
        if (c.EraseWindow(self)) {
          c.pending_raise_.push_back(self);
        }
      } else if (c.ec_.Read() != snapshot) {
        c.absorbed_.fetch_add(1, std::memory_order_relaxed);
        obs::Inc(obs::Counter::kWakeupWaitingHits);
      } else {
        TAOS_CHECK(c.EraseWindow(self));
        gen = ++self->next_timer_gen;
        if (nub.waitq_mode()) {
          cell = c.wqueue_.Enqueue();
          // Cannot fail: resumers hold c's ObjLock, which we hold.
          TAOS_CHECK(InstallBlockedLocked(self, cell,
                                          ThreadRecord::BlockKind::kCondition,
                                          &c, c.id(), &c.nub_lock_,
                                          /*alertable=*/true));
        } else {
          c.queue_.PushBack(self);
          SetBlockedLocked(self, ThreadRecord::BlockKind::kCondition, &c, c.id(),
                           &c.nub_lock_, /*alertable=*/true);
        }
        PublishTimedLocked(self, gen);
        parked = true;
      }
    }
    bool expired = false;
    if (parked) {
      Timer::Get().Arm(self, gen, deadline);
      ParkBlocked(self);
      Timer::Get().Cancel(self, gen);
      if (cell != nullptr) {
        FinishWaitCell(self, cell);
      }
      expired = ConsumeTimeoutWoken(self);
      if (!expired) {
        SpinGuard sg(self->lock);
        raise = self->alert_woken ||
                self->alerted.load(std::memory_order_relaxed);
      }
    }

    if (expired) {
      // Atomic action TimeoutResume. Its frame excludes the alerts set: a
      // pending alert survives the timeout untouched.
      Condition* cp = &c;
      m.TracedAcquire(self, spec::MakeTimeoutResume(self->id, m.id_, c.id_),
                      &c.nub_lock_,
                      [cp, self] { cp->ErasePendingTimeout(self); });
      result = WaitResult::kTimeout;
    } else if (raise) {
      // Atomic action AlertResume / RAISES — but reported as a value, not
      // thrown: the alert and the pending-raise membership are consumed
      // exactly as in AlertWait.
      Condition* cp = &c;
      m.TracedAcquire(self,
                      spec::MakeAlertResumeRaises(self->id, m.id_, c.id_),
                      &c.nub_lock_, [cp, self] {
                        cp->ErasePendingRaise(self);
                        self->alerted.store(false, std::memory_order_relaxed);
                        self->alert_woken = false;
                      });
      result = WaitResult::kAlerted;
    } else {
      m.TracedAcquire(self,
                      spec::MakeAlertResumeReturns(self->id, m.id_, c.id_),
                      nullptr, [self] { self->alert_woken = false; });
      result = WaitResult::kSatisfied;
    }
  } else {
    // --- Production path ---
    const std::uint64_t deadline = DeadlineAfter(timeout);
    const EventCount::Value i = c.ec_.Read();
    c.waiters_.fetch_add(1, std::memory_order_seq_cst);
    m.Release();

    nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
    bool parked = false;
    bool raise = false;
    bool expired = false;
    if (nub.waitq_mode()) {
      waitq::WaitCell* cell = c.wqueue_.Enqueue();
      std::uint64_t gen = 0;
      {
        SpinGuard sg(self->lock);
        TAOS_CHAOS(kAlertWaitWindow);
        if (self->alerted.load(std::memory_order_relaxed)) {
          raise = true;
          if (cell->Cancel() == waitq::WaitCell::CancelOutcome::kCancelled) {
            c.waiters_.fetch_sub(1, std::memory_order_relaxed);
          }
        } else if (c.ec_.Read() != i) {
          if (cell->Cancel() == waitq::WaitCell::CancelOutcome::kCancelled) {
            c.waiters_.fetch_sub(1, std::memory_order_relaxed);
            c.absorbed_.fetch_add(1, std::memory_order_relaxed);
            obs::Inc(obs::Counter::kWakeupWaitingHits);
          }
        } else {
          parked = InstallBlockedLocked(self, cell,
                                        ThreadRecord::BlockKind::kCondition,
                                        &c, c.id(), &c.nub_lock_, /*alertable=*/true);
          if (parked) {
            gen = ++self->next_timer_gen;
            PublishTimedLocked(self, gen);
          }
        }
      }
      if (parked) {
        Timer::Get().Arm(self, gen, deadline);
        ParkBlocked(self);
        Timer::Get().Cancel(self, gen);
        // A cancelled cell means Alert OR the timer dequeued us; the
        // timeout_woken receipt says which. A resumed one means
        // Signal/Broadcast did.
        const bool cancelled = FinishWaitCell(self, cell) ==
                               waitq::WaitCell::State::kCancelled;
        SpinGuard sg(self->lock);
        expired = self->timeout_woken;
        self->timeout_woken = false;
        if (!expired) {
          raise = cancelled || self->alert_woken ||
                  self->alerted.load(std::memory_order_relaxed);
        }
      } else {
        waitq::WaitQueue::Detach(cell);
      }
    } else {
      std::uint64_t gen = 0;
      {
        NubGuard g(c.nub_lock_);
        SpinGuard sg(self->lock);
        TAOS_CHAOS(kAlertWaitWindow);
        if (self->alerted.load(std::memory_order_relaxed)) {
          raise = true;
          c.waiters_.fetch_sub(1, std::memory_order_relaxed);
        } else if (c.ec_.Read() == i) {
          c.queue_.PushBack(self);
          SetBlockedLocked(self, ThreadRecord::BlockKind::kCondition, &c, c.id(),
                           &c.nub_lock_, /*alertable=*/true);
          gen = ++self->next_timer_gen;
          PublishTimedLocked(self, gen);
          parked = true;
        } else {
          c.waiters_.fetch_sub(1, std::memory_order_relaxed);
          c.absorbed_.fetch_add(1, std::memory_order_relaxed);
          obs::Inc(obs::Counter::kWakeupWaitingHits);
        }
      }
      if (parked) {
        Timer::Get().Arm(self, gen, deadline);
        ParkBlocked(self);
        Timer::Get().Cancel(self, gen);
        SpinGuard sg(self->lock);
        expired = self->timeout_woken;
        self->timeout_woken = false;
        if (!expired) {
          raise = self->alert_woken ||
                  self->alerted.load(std::memory_order_relaxed);
        }
      }
    }

    m.Acquire();
    {
      SpinGuard sg(self->lock);
      self->alert_woken = false;
      // kTimeout never consumes a pending alert; kAlerted always does.
      if (!expired && raise) {
        self->alerted.store(false, std::memory_order_relaxed);
      }
    }
    result = expired ? WaitResult::kTimeout
                     : (raise ? WaitResult::kAlerted : WaitResult::kSatisfied);
  }

  switch (result) {
    case WaitResult::kSatisfied:
      obs::Inc(obs::Counter::kTimedWaitSatisfied);
      break;
    case WaitResult::kTimeout:
      obs::Inc(obs::Counter::kTimedWaitTimeouts);
      break;
    case WaitResult::kAlerted:
      obs::Inc(obs::Counter::kTimedWaitAlerted);
      break;
  }
  return result;
}

void AlertP(Semaphore& s) {
  obs::ScopedEvent ev(obs::Op::kAlertP, s.id_);
  Nub& nub = Nub::Get();
  ThreadRecord* self = nub.Current();

  if (nub.tracing()) {
    // --- Traced (spec-emitting) path ---
    // Each check-act pair below is one atomic action under s's ObjLock plus
    // the record lock (the alert flag is part of the action's state); this
    // path prefers the RAISES outcome when both WHEN clauses hold, which
    // the spec allows.
    nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
    obs::Inc(obs::Counter::kNubAlertP);
    for (;;) {
      waitq::WaitCell* cell = nullptr;
      bool parked = false;
      {
        NubGuard g(s.nub_lock_);
        SpinGuard sg(self->lock);
        if (self->alerted.load(std::memory_order_relaxed)) {
          self->alerted.store(false, std::memory_order_relaxed);
          self->alert_woken = false;
          nub.EmitTraced(spec::MakeAlertPRaises(self->id, s.id_));
          throw Alerted();
        }
        if (s.bit_.load(std::memory_order_relaxed) == 0) {
          s.bit_.store(1, std::memory_order_relaxed);
          nub.EmitTraced(spec::MakeAlertPReturns(self->id, s.id_));
          return;
        }
        if (nub.waitq_mode()) {
          cell = s.wqueue_.Enqueue();
          s.queue_len_.fetch_add(1, std::memory_order_relaxed);
          // Cannot fail: resumers hold s's ObjLock, which we hold.
          TAOS_CHECK(InstallBlockedLocked(self, cell,
                                          ThreadRecord::BlockKind::kSemaphore,
                                          &s, s.id(), &s.nub_lock_,
                                          /*alertable=*/true));
        } else {
          s.queue_.PushBack(self);
          s.queue_len_.fetch_add(1, std::memory_order_relaxed);
          SetBlockedLocked(self, ThreadRecord::BlockKind::kSemaphore, &s, s.id(),
                           &s.nub_lock_, /*alertable=*/true);
        }
        parked = true;
      }
      if (parked) {
        ParkBlocked(self);
        if (cell != nullptr) {
          FinishWaitCell(self, cell);
        }
        SpinGuard sg(self->lock);
        if (self->alert_woken) {
          self->alert_woken = false;
          self->alerted.store(false, std::memory_order_relaxed);
          // The Alert that woke us already dequeued SELF and emitted its own
          // action; this one touches only the alert flag, under the record
          // lock.
          nub.EmitTraced(spec::MakeAlertPRaises(self->id, s.id_));
          throw Alerted();
        }
      }
    }
  }

  // --- Production path ---
  // User-code fast path: the test-and-set may win even when an alert is
  // pending — the source of the RETURNS/RAISES nondeterminism the paper
  // discusses (the implementor kept it for efficiency; the released spec
  // legitimized it).
  if (s.bit_.exchange(1, std::memory_order_acquire) == 0) {
    s.fast_ps_.fetch_add(1, std::memory_order_relaxed);
    obs::Inc(obs::Counter::kFastSemP);
    return;
  }

  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  s.slow_ps_.fetch_add(1, std::memory_order_relaxed);
  obs::Inc(obs::Counter::kNubAlertP);

  if (nub.waitq_mode()) {
    for (;;) {
      {
        SpinGuard sg(self->lock);
        if (self->alerted.load(std::memory_order_relaxed)) {
          self->alerted.store(false, std::memory_order_relaxed);
          self->alert_woken = false;
          throw Alerted();
        }
      }
      waitq::WaitCell* cell = s.wqueue_.Enqueue();
      s.queue_len_.fetch_add(1, std::memory_order_seq_cst);
      bool parked = false;
      bool raise = false;
      {
        SpinGuard sg(self->lock);
        TAOS_CHAOS(kAlertWaitWindow);
        if (self->alerted.load(std::memory_order_relaxed)) {
          // An Alert slipped in after the check above; it saw this thread
          // unpublished and left only the flag. Withdraw the claim and
          // raise — unless a V's resume already landed on the cell, in
          // which case the wakeup must stand (raising here would lose the
          // V): proceed to the retry with the flag still pending.
          if (cell->Cancel() == waitq::WaitCell::CancelOutcome::kCancelled) {
            s.queue_len_.fetch_sub(1, std::memory_order_relaxed);
            self->alerted.store(false, std::memory_order_relaxed);
            self->alert_woken = false;
            raise = true;
          }
        } else if (s.bit_.load(std::memory_order_seq_cst) != 0) {
          parked = InstallBlockedLocked(self, cell,
                                        ThreadRecord::BlockKind::kSemaphore,
                                        &s, s.id(), &s.nub_lock_, /*alertable=*/true);
        } else {
          // Available in the meantime: withdraw the claim and retry.
          if (cell->Cancel() == waitq::WaitCell::CancelOutcome::kCancelled) {
            s.queue_len_.fetch_sub(1, std::memory_order_relaxed);
          }
        }
      }
      if (raise) {
        waitq::WaitQueue::Detach(cell);
        throw Alerted();
      }
      if (parked) {
        ParkBlocked(self);
        if (FinishWaitCell(self, cell) ==
            waitq::WaitCell::State::kCancelled) {
          // Alert dequeued us with its cancel CAS.
          SpinGuard sg(self->lock);
          self->alerted.store(false, std::memory_order_relaxed);
          self->alert_woken = false;
          throw Alerted();
        }
      } else {
        waitq::WaitQueue::Detach(cell);
      }
      if (s.bit_.exchange(1, std::memory_order_acquire) == 0) {
        return;
      }
      obs::Inc(obs::Counter::kLockBitRetries);
      if (parked) {
        obs::Inc(obs::Counter::kSpuriousWakeups);
      }
    }
  }

  for (;;) {
    bool parked = false;
    {
      NubGuard g(s.nub_lock_);
      SpinGuard sg(self->lock);
      TAOS_CHAOS(kAlertWaitWindow);
      if (self->alerted.load(std::memory_order_relaxed)) {
        self->alerted.store(false, std::memory_order_relaxed);
        self->alert_woken = false;
        throw Alerted();
      }
      s.queue_.PushBack(self);
      s.queue_len_.fetch_add(1, std::memory_order_seq_cst);
      if (s.bit_.load(std::memory_order_seq_cst) != 0) {
        SetBlockedLocked(self, ThreadRecord::BlockKind::kSemaphore, &s, s.id(),
                         &s.nub_lock_, /*alertable=*/true);
        parked = true;
      } else {
        s.queue_.Remove(self);
        s.queue_len_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    if (parked) {
      ParkBlocked(self);
      SpinGuard sg(self->lock);
      if (self->alert_woken) {
        self->alert_woken = false;
        self->alerted.store(false, std::memory_order_relaxed);
        throw Alerted();
      }
    }
    if (s.bit_.exchange(1, std::memory_order_acquire) == 0) {
      return;
    }
    obs::Inc(obs::Counter::kLockBitRetries);
    if (parked) {
      obs::Inc(obs::Counter::kSpuriousWakeups);
    }
  }
}

}  // namespace taos
