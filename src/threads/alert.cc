#include "src/threads/alert.h"

#include "src/base/check.h"
#include "src/spec/action.h"
#include "src/threads/nub.h"

namespace taos {

void Alert(ThreadHandle h) {
  TAOS_CHECK(h.rec != nullptr);
  Nub& nub = Nub::Get();
  ThreadRecord* self = nub.Current();
  ThreadRecord* t = h.rec;
  ThreadRecord* wake = nullptr;
  {
    SpinGuard g(nub.lock());
    // alerts := insert(alerts, t)
    t->alerted.store(true, std::memory_order_relaxed);
    if (t->block_kind != ThreadRecord::BlockKind::kNone && t->alertable) {
      switch (t->block_kind) {
        case ThreadRecord::BlockKind::kSemaphore: {
          auto* s = static_cast<Semaphore*>(t->blocked_obj);
          s->queue_.Remove(t);
          s->queue_len_.fetch_sub(1, std::memory_order_relaxed);
          break;
        }
        case ThreadRecord::BlockKind::kCondition: {
          auto* c = static_cast<Condition*>(t->blocked_obj);
          c->queue_.Remove(t);
          if (nub.tracing()) {
            // The alerted thread will raise; it stays a spec-member of c
            // until its AlertResume action fires (corrected AlertWait
            // semantics), so a Signal in between may still remove it.
            c->pending_raise_.push_back(t);
          } else {
            c->waiters_.fetch_sub(1, std::memory_order_relaxed);
          }
          break;
        }
        case ThreadRecord::BlockKind::kMutex:
        case ThreadRecord::BlockKind::kNone:
          TAOS_PANIC("alertable thread blocked on a mutex");
      }
      t->block_kind = ThreadRecord::BlockKind::kNone;
      t->blocked_obj = nullptr;
      t->alert_woken = true;
      wake = t;
    }
    if (nub.tracing()) {
      nub.trace()->Emit(spec::MakeAlert(self->id, t->id));
    }
  }
  if (wake != nullptr) {
    wake->park.release();
  }
}

bool TestAlert() {
  Nub& nub = Nub::Get();
  ThreadRecord* self = nub.Current();
  if (nub.tracing()) {
    SpinGuard g(nub.lock());
    const bool b = self->alerted.exchange(false, std::memory_order_relaxed);
    nub.trace()->Emit(spec::MakeTestAlert(self->id, b));
    return b;
  }
  return self->alerted.exchange(false, std::memory_order_seq_cst);
}

void AlertWait(Mutex& m, Condition& c) {
  Nub& nub = Nub::Get();
  ThreadRecord* self = nub.Current();
  // REQUIRES m = SELF.
  TAOS_CHECK(m.holder_.load(std::memory_order_relaxed) == self->id);

  if (nub.tracing()) {
    // --- Traced (spec-emitting) path ---
    // Atomic action Enqueue (AlertWait flavour: UNCHANGED [alerts]).
    EventCount::Value snapshot = 0;
    ThreadRecord* wake = nullptr;
    {
      SpinGuard g(nub.lock());
      snapshot = c.ec_.Read();
      wake = m.TracedReleaseLocked(self, /*emit_release=*/false);
      c.window_.push_back(self);
      nub.trace()->Emit(spec::MakeAlertEnqueue(self->id, m.id_, c.id_));
    }
    if (wake != nullptr) {
      wake->park.release();
    }

    // AlertBlock: like Block(c, i) but responsive to alerts.
    bool parked = false;
    bool raise = false;
    {
      SpinGuard g(nub.lock());
      if (self->alerted.load(std::memory_order_relaxed)) {
        raise = true;
        if (c.EraseWindow(self)) {
          // Still a member of c until the AlertResume action fires.
          c.pending_raise_.push_back(self);
        }
      } else if (c.ec_.Read() != snapshot) {
        // Absorbed by an intervening Signal/Broadcast (which removed us
        // from c when it emitted): resume normally.
        c.absorbed_.fetch_add(1, std::memory_order_relaxed);
      } else {
        TAOS_CHECK(c.EraseWindow(self));
        c.queue_.PushBack(self);
        self->block_kind = ThreadRecord::BlockKind::kCondition;
        self->blocked_obj = &c;
        self->alertable = true;
        self->alert_woken = false;
        parked = true;
      }
    }
    if (parked) {
      self->parks.fetch_add(1, std::memory_order_relaxed);
      self->park.acquire();
      // Woken either by Alert (alert_woken, already in pending_raise_) or
      // by Signal/Broadcast (removed from c). If an alert is pending in
      // either case, this implementation chooses to raise — the spec
      // permits either outcome when both WHEN clauses hold.
      raise = self->alert_woken ||
              self->alerted.load(std::memory_order_relaxed);
    }

    if (raise) {
      // Atomic action AlertResume / RAISES: regain m, leave c and alerts.
      Condition* cp = &c;
      m.TracedAcquire(self,
                      spec::MakeAlertResumeRaises(self->id, m.id_, c.id_),
                      [cp, self] {
                        cp->ErasePendingRaise(self);
                        self->alerted.store(false, std::memory_order_relaxed);
                        self->alert_woken = false;
                      });
      throw Alerted();
    }
    // Atomic action AlertResume / RETURNS.
    m.TracedAcquire(self,
                    spec::MakeAlertResumeReturns(self->id, m.id_, c.id_));
    self->alert_woken = false;
    return;
  }

  // --- Production path ---
  const EventCount::Value i = c.ec_.Read();
  c.waiters_.fetch_add(1, std::memory_order_seq_cst);
  m.Release();

  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  bool parked = false;
  bool raise = false;
  {
    SpinGuard g(nub.lock());
    if (self->alerted.load(std::memory_order_relaxed)) {
      raise = true;
      c.waiters_.fetch_sub(1, std::memory_order_relaxed);
    } else if (c.ec_.Read() == i) {
      c.queue_.PushBack(self);
      self->block_kind = ThreadRecord::BlockKind::kCondition;
      self->blocked_obj = &c;
      self->alertable = true;
      self->alert_woken = false;
      parked = true;
    } else {
      c.waiters_.fetch_sub(1, std::memory_order_relaxed);
      c.absorbed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (parked) {
    self->parks.fetch_add(1, std::memory_order_relaxed);
    self->park.acquire();
    raise = self->alert_woken ||
            self->alerted.load(std::memory_order_relaxed);
  }

  m.Acquire();
  if (raise) {
    self->alerted.store(false, std::memory_order_relaxed);
    self->alert_woken = false;
    throw Alerted();
  }
  self->alert_woken = false;
}

void AlertP(Semaphore& s) {
  Nub& nub = Nub::Get();
  ThreadRecord* self = nub.Current();

  if (nub.tracing()) {
    // --- Traced (spec-emitting) path ---
    // Under the spin-lock every check-act pair is one atomic action; this
    // path prefers the RAISES outcome when both WHEN clauses hold, which
    // the spec allows.
    nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
    for (;;) {
      bool parked = false;
      {
        SpinGuard g(nub.lock());
        if (self->alerted.load(std::memory_order_relaxed)) {
          self->alerted.store(false, std::memory_order_relaxed);
          self->alert_woken = false;
          nub.trace()->Emit(spec::MakeAlertPRaises(self->id, s.id_));
          throw Alerted();
        }
        if (s.bit_.load(std::memory_order_relaxed) == 0) {
          s.bit_.store(1, std::memory_order_relaxed);
          nub.trace()->Emit(spec::MakeAlertPReturns(self->id, s.id_));
          return;
        }
        s.queue_.PushBack(self);
        s.queue_len_.fetch_add(1, std::memory_order_relaxed);
        self->block_kind = ThreadRecord::BlockKind::kSemaphore;
        self->blocked_obj = &s;
        self->alertable = true;
        self->alert_woken = false;
        parked = true;
      }
      if (parked) {
        self->parks.fetch_add(1, std::memory_order_relaxed);
        self->park.acquire();
        if (self->alert_woken) {
          SpinGuard g(nub.lock());
          self->alert_woken = false;
          self->alerted.store(false, std::memory_order_relaxed);
          nub.trace()->Emit(spec::MakeAlertPRaises(self->id, s.id_));
          throw Alerted();
        }
      }
    }
  }

  // --- Production path ---
  // User-code fast path: the test-and-set may win even when an alert is
  // pending — the source of the RETURNS/RAISES nondeterminism the paper
  // discusses (the implementor kept it for efficiency; the released spec
  // legitimized it).
  if (s.bit_.exchange(1, std::memory_order_acquire) == 0) {
    s.fast_ps_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  nub.nub_entries.fetch_add(1, std::memory_order_relaxed);
  s.slow_ps_.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    bool parked = false;
    {
      SpinGuard g(nub.lock());
      if (self->alerted.load(std::memory_order_relaxed)) {
        self->alerted.store(false, std::memory_order_relaxed);
        self->alert_woken = false;
        throw Alerted();
      }
      s.queue_.PushBack(self);
      s.queue_len_.fetch_add(1, std::memory_order_seq_cst);
      if (s.bit_.load(std::memory_order_seq_cst) != 0) {
        self->block_kind = ThreadRecord::BlockKind::kSemaphore;
        self->blocked_obj = &s;
        self->alertable = true;
        self->alert_woken = false;
        parked = true;
      } else {
        s.queue_.Remove(self);
        s.queue_len_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    if (parked) {
      self->parks.fetch_add(1, std::memory_order_relaxed);
      self->park.acquire();
      if (self->alert_woken) {
        self->alert_woken = false;
        self->alerted.store(false, std::memory_order_relaxed);
        throw Alerted();
      }
    }
    if (s.bit_.exchange(1, std::memory_order_acquire) == 0) {
      return;
    }
  }
}

}  // namespace taos
