# Empty compiler generated dependencies file for taos_base.
# This may be replaced when dependencies are built.
