file(REMOVE_RECURSE
  "CMakeFiles/taos_base.dir/check.cc.o"
  "CMakeFiles/taos_base.dir/check.cc.o.d"
  "libtaos_base.a"
  "libtaos_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taos_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
