file(REMOVE_RECURSE
  "libtaos_base.a"
)
