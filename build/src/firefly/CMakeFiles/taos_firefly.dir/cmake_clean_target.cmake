file(REMOVE_RECURSE
  "libtaos_firefly.a"
)
