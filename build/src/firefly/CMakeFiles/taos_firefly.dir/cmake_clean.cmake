file(REMOVE_RECURSE
  "CMakeFiles/taos_firefly.dir/machine.cc.o"
  "CMakeFiles/taos_firefly.dir/machine.cc.o.d"
  "CMakeFiles/taos_firefly.dir/sync.cc.o"
  "CMakeFiles/taos_firefly.dir/sync.cc.o.d"
  "libtaos_firefly.a"
  "libtaos_firefly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taos_firefly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
