# Empty dependencies file for taos_firefly.
# This may be replaced when dependencies are built.
