# Empty compiler generated dependencies file for taos_spec.
# This may be replaced when dependencies are built.
