file(REMOVE_RECURSE
  "libtaos_spec.a"
)
