
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spec/action.cc" "src/spec/CMakeFiles/taos_spec.dir/action.cc.o" "gcc" "src/spec/CMakeFiles/taos_spec.dir/action.cc.o.d"
  "/root/repo/src/spec/checker.cc" "src/spec/CMakeFiles/taos_spec.dir/checker.cc.o" "gcc" "src/spec/CMakeFiles/taos_spec.dir/checker.cc.o.d"
  "/root/repo/src/spec/enumerate.cc" "src/spec/CMakeFiles/taos_spec.dir/enumerate.cc.o" "gcc" "src/spec/CMakeFiles/taos_spec.dir/enumerate.cc.o.d"
  "/root/repo/src/spec/render.cc" "src/spec/CMakeFiles/taos_spec.dir/render.cc.o" "gcc" "src/spec/CMakeFiles/taos_spec.dir/render.cc.o.d"
  "/root/repo/src/spec/semantics.cc" "src/spec/CMakeFiles/taos_spec.dir/semantics.cc.o" "gcc" "src/spec/CMakeFiles/taos_spec.dir/semantics.cc.o.d"
  "/root/repo/src/spec/state.cc" "src/spec/CMakeFiles/taos_spec.dir/state.cc.o" "gcc" "src/spec/CMakeFiles/taos_spec.dir/state.cc.o.d"
  "/root/repo/src/spec/trace.cc" "src/spec/CMakeFiles/taos_spec.dir/trace.cc.o" "gcc" "src/spec/CMakeFiles/taos_spec.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/taos_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
