file(REMOVE_RECURSE
  "CMakeFiles/taos_spec.dir/action.cc.o"
  "CMakeFiles/taos_spec.dir/action.cc.o.d"
  "CMakeFiles/taos_spec.dir/checker.cc.o"
  "CMakeFiles/taos_spec.dir/checker.cc.o.d"
  "CMakeFiles/taos_spec.dir/enumerate.cc.o"
  "CMakeFiles/taos_spec.dir/enumerate.cc.o.d"
  "CMakeFiles/taos_spec.dir/render.cc.o"
  "CMakeFiles/taos_spec.dir/render.cc.o.d"
  "CMakeFiles/taos_spec.dir/semantics.cc.o"
  "CMakeFiles/taos_spec.dir/semantics.cc.o.d"
  "CMakeFiles/taos_spec.dir/state.cc.o"
  "CMakeFiles/taos_spec.dir/state.cc.o.d"
  "CMakeFiles/taos_spec.dir/trace.cc.o"
  "CMakeFiles/taos_spec.dir/trace.cc.o.d"
  "libtaos_spec.a"
  "libtaos_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taos_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
