
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/threads/alert.cc" "src/threads/CMakeFiles/taos_threads.dir/alert.cc.o" "gcc" "src/threads/CMakeFiles/taos_threads.dir/alert.cc.o.d"
  "/root/repo/src/threads/condition.cc" "src/threads/CMakeFiles/taos_threads.dir/condition.cc.o" "gcc" "src/threads/CMakeFiles/taos_threads.dir/condition.cc.o.d"
  "/root/repo/src/threads/mutex.cc" "src/threads/CMakeFiles/taos_threads.dir/mutex.cc.o" "gcc" "src/threads/CMakeFiles/taos_threads.dir/mutex.cc.o.d"
  "/root/repo/src/threads/nub.cc" "src/threads/CMakeFiles/taos_threads.dir/nub.cc.o" "gcc" "src/threads/CMakeFiles/taos_threads.dir/nub.cc.o.d"
  "/root/repo/src/threads/semaphore.cc" "src/threads/CMakeFiles/taos_threads.dir/semaphore.cc.o" "gcc" "src/threads/CMakeFiles/taos_threads.dir/semaphore.cc.o.d"
  "/root/repo/src/threads/thread.cc" "src/threads/CMakeFiles/taos_threads.dir/thread.cc.o" "gcc" "src/threads/CMakeFiles/taos_threads.dir/thread.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/taos_base.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/taos_spec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
