file(REMOVE_RECURSE
  "CMakeFiles/taos_threads.dir/alert.cc.o"
  "CMakeFiles/taos_threads.dir/alert.cc.o.d"
  "CMakeFiles/taos_threads.dir/condition.cc.o"
  "CMakeFiles/taos_threads.dir/condition.cc.o.d"
  "CMakeFiles/taos_threads.dir/mutex.cc.o"
  "CMakeFiles/taos_threads.dir/mutex.cc.o.d"
  "CMakeFiles/taos_threads.dir/nub.cc.o"
  "CMakeFiles/taos_threads.dir/nub.cc.o.d"
  "CMakeFiles/taos_threads.dir/semaphore.cc.o"
  "CMakeFiles/taos_threads.dir/semaphore.cc.o.d"
  "CMakeFiles/taos_threads.dir/thread.cc.o"
  "CMakeFiles/taos_threads.dir/thread.cc.o.d"
  "libtaos_threads.a"
  "libtaos_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taos_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
