file(REMOVE_RECURSE
  "libtaos_threads.a"
)
