# Empty compiler generated dependencies file for taos_threads.
# This may be replaced when dependencies are built.
