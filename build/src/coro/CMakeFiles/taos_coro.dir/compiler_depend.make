# Empty compiler generated dependencies file for taos_coro.
# This may be replaced when dependencies are built.
