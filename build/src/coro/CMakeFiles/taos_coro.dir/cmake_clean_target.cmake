file(REMOVE_RECURSE
  "libtaos_coro.a"
)
