file(REMOVE_RECURSE
  "CMakeFiles/taos_coro.dir/scheduler.cc.o"
  "CMakeFiles/taos_coro.dir/scheduler.cc.o.d"
  "CMakeFiles/taos_coro.dir/sync.cc.o"
  "CMakeFiles/taos_coro.dir/sync.cc.o.d"
  "libtaos_coro.a"
  "libtaos_coro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taos_coro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
