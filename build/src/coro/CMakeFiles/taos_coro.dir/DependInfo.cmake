
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coro/scheduler.cc" "src/coro/CMakeFiles/taos_coro.dir/scheduler.cc.o" "gcc" "src/coro/CMakeFiles/taos_coro.dir/scheduler.cc.o.d"
  "/root/repo/src/coro/sync.cc" "src/coro/CMakeFiles/taos_coro.dir/sync.cc.o" "gcc" "src/coro/CMakeFiles/taos_coro.dir/sync.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/taos_base.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/taos_spec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
