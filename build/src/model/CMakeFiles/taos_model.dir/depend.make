# Empty dependencies file for taos_model.
# This may be replaced when dependencies are built.
