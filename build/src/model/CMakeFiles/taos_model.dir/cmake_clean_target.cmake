file(REMOVE_RECURSE
  "libtaos_model.a"
)
