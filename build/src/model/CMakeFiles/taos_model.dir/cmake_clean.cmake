file(REMOVE_RECURSE
  "CMakeFiles/taos_model.dir/explorer.cc.o"
  "CMakeFiles/taos_model.dir/explorer.cc.o.d"
  "CMakeFiles/taos_model.dir/fuzz.cc.o"
  "CMakeFiles/taos_model.dir/fuzz.cc.o.d"
  "CMakeFiles/taos_model.dir/litmus.cc.o"
  "CMakeFiles/taos_model.dir/litmus.cc.o.d"
  "libtaos_model.a"
  "libtaos_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taos_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
