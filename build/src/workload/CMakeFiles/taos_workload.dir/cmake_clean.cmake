file(REMOVE_RECURSE
  "CMakeFiles/taos_workload.dir/thread_pool.cc.o"
  "CMakeFiles/taos_workload.dir/thread_pool.cc.o.d"
  "CMakeFiles/taos_workload.dir/work.cc.o"
  "CMakeFiles/taos_workload.dir/work.cc.o.d"
  "libtaos_workload.a"
  "libtaos_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taos_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
