# Empty compiler generated dependencies file for taos_workload.
# This may be replaced when dependencies are built.
