file(REMOVE_RECURSE
  "libtaos_workload.a"
)
