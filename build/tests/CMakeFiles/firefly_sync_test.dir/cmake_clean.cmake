file(REMOVE_RECURSE
  "CMakeFiles/firefly_sync_test.dir/firefly_sync_test.cc.o"
  "CMakeFiles/firefly_sync_test.dir/firefly_sync_test.cc.o.d"
  "firefly_sync_test"
  "firefly_sync_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firefly_sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
