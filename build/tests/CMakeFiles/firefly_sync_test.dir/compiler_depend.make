# Empty compiler generated dependencies file for firefly_sync_test.
# This may be replaced when dependencies are built.
