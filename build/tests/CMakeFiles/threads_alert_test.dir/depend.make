# Empty dependencies file for threads_alert_test.
# This may be replaced when dependencies are built.
