file(REMOVE_RECURSE
  "CMakeFiles/threads_alert_test.dir/threads_alert_test.cc.o"
  "CMakeFiles/threads_alert_test.dir/threads_alert_test.cc.o.d"
  "threads_alert_test"
  "threads_alert_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threads_alert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
