file(REMOVE_RECURSE
  "CMakeFiles/threads_mutex_test.dir/threads_mutex_test.cc.o"
  "CMakeFiles/threads_mutex_test.dir/threads_mutex_test.cc.o.d"
  "threads_mutex_test"
  "threads_mutex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threads_mutex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
