file(REMOVE_RECURSE
  "CMakeFiles/spec_checker_test.dir/spec_checker_test.cc.o"
  "CMakeFiles/spec_checker_test.dir/spec_checker_test.cc.o.d"
  "spec_checker_test"
  "spec_checker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
