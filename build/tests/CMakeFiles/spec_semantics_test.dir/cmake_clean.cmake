file(REMOVE_RECURSE
  "CMakeFiles/spec_semantics_test.dir/spec_semantics_test.cc.o"
  "CMakeFiles/spec_semantics_test.dir/spec_semantics_test.cc.o.d"
  "spec_semantics_test"
  "spec_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
