# Empty dependencies file for requires_death_test.
# This may be replaced when dependencies are built.
