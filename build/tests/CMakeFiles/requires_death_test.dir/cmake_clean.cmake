file(REMOVE_RECURSE
  "CMakeFiles/requires_death_test.dir/requires_death_test.cc.o"
  "CMakeFiles/requires_death_test.dir/requires_death_test.cc.o.d"
  "requires_death_test"
  "requires_death_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/requires_death_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
