# Empty compiler generated dependencies file for firefly_priority_test.
# This may be replaced when dependencies are built.
