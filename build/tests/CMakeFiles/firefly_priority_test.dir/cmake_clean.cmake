file(REMOVE_RECURSE
  "CMakeFiles/firefly_priority_test.dir/firefly_priority_test.cc.o"
  "CMakeFiles/firefly_priority_test.dir/firefly_priority_test.cc.o.d"
  "firefly_priority_test"
  "firefly_priority_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firefly_priority_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
