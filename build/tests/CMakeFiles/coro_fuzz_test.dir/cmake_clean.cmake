file(REMOVE_RECURSE
  "CMakeFiles/coro_fuzz_test.dir/coro_fuzz_test.cc.o"
  "CMakeFiles/coro_fuzz_test.dir/coro_fuzz_test.cc.o.d"
  "coro_fuzz_test"
  "coro_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coro_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
