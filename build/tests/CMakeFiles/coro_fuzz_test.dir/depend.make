# Empty dependencies file for coro_fuzz_test.
# This may be replaced when dependencies are built.
