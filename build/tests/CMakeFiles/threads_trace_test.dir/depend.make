# Empty dependencies file for threads_trace_test.
# This may be replaced when dependencies are built.
