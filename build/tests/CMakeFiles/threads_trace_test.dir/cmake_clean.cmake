file(REMOVE_RECURSE
  "CMakeFiles/threads_trace_test.dir/threads_trace_test.cc.o"
  "CMakeFiles/threads_trace_test.dir/threads_trace_test.cc.o.d"
  "threads_trace_test"
  "threads_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threads_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
