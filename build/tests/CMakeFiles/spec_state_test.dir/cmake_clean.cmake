file(REMOVE_RECURSE
  "CMakeFiles/spec_state_test.dir/spec_state_test.cc.o"
  "CMakeFiles/spec_state_test.dir/spec_state_test.cc.o.d"
  "spec_state_test"
  "spec_state_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
