# Empty dependencies file for spec_state_test.
# This may be replaced when dependencies are built.
