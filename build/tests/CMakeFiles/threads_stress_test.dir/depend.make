# Empty dependencies file for threads_stress_test.
# This may be replaced when dependencies are built.
