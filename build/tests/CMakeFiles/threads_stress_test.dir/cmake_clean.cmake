file(REMOVE_RECURSE
  "CMakeFiles/threads_stress_test.dir/threads_stress_test.cc.o"
  "CMakeFiles/threads_stress_test.dir/threads_stress_test.cc.o.d"
  "threads_stress_test"
  "threads_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threads_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
