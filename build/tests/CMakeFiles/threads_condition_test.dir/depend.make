# Empty dependencies file for threads_condition_test.
# This may be replaced when dependencies are built.
