file(REMOVE_RECURSE
  "CMakeFiles/threads_condition_test.dir/threads_condition_test.cc.o"
  "CMakeFiles/threads_condition_test.dir/threads_condition_test.cc.o.d"
  "threads_condition_test"
  "threads_condition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threads_condition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
