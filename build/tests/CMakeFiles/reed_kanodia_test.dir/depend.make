# Empty dependencies file for reed_kanodia_test.
# This may be replaced when dependencies are built.
