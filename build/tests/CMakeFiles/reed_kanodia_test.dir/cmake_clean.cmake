file(REMOVE_RECURSE
  "CMakeFiles/reed_kanodia_test.dir/reed_kanodia_test.cc.o"
  "CMakeFiles/reed_kanodia_test.dir/reed_kanodia_test.cc.o.d"
  "reed_kanodia_test"
  "reed_kanodia_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reed_kanodia_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
