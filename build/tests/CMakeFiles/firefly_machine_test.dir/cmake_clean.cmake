file(REMOVE_RECURSE
  "CMakeFiles/firefly_machine_test.dir/firefly_machine_test.cc.o"
  "CMakeFiles/firefly_machine_test.dir/firefly_machine_test.cc.o.d"
  "firefly_machine_test"
  "firefly_machine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firefly_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
