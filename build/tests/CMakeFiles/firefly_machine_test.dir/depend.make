# Empty dependencies file for firefly_machine_test.
# This may be replaced when dependencies are built.
