# Empty compiler generated dependencies file for threads_semaphore_test.
# This may be replaced when dependencies are built.
