file(REMOVE_RECURSE
  "CMakeFiles/threads_semaphore_test.dir/threads_semaphore_test.cc.o"
  "CMakeFiles/threads_semaphore_test.dir/threads_semaphore_test.cc.o.d"
  "threads_semaphore_test"
  "threads_semaphore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threads_semaphore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
