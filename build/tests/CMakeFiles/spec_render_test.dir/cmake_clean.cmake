file(REMOVE_RECURSE
  "CMakeFiles/spec_render_test.dir/spec_render_test.cc.o"
  "CMakeFiles/spec_render_test.dir/spec_render_test.cc.o.d"
  "spec_render_test"
  "spec_render_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_render_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
