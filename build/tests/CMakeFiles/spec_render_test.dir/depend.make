# Empty dependencies file for spec_render_test.
# This may be replaced when dependencies are built.
