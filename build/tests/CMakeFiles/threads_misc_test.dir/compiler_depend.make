# Empty compiler generated dependencies file for threads_misc_test.
# This may be replaced when dependencies are built.
