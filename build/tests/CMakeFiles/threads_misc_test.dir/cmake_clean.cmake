file(REMOVE_RECURSE
  "CMakeFiles/threads_misc_test.dir/threads_misc_test.cc.o"
  "CMakeFiles/threads_misc_test.dir/threads_misc_test.cc.o.d"
  "threads_misc_test"
  "threads_misc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threads_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
