# Empty dependencies file for model_explorer_test.
# This may be replaced when dependencies are built.
