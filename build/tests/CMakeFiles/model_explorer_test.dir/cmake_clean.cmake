file(REMOVE_RECURSE
  "CMakeFiles/model_explorer_test.dir/model_explorer_test.cc.o"
  "CMakeFiles/model_explorer_test.dir/model_explorer_test.cc.o.d"
  "model_explorer_test"
  "model_explorer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_explorer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
