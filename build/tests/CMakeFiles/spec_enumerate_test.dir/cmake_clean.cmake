file(REMOVE_RECURSE
  "CMakeFiles/spec_enumerate_test.dir/spec_enumerate_test.cc.o"
  "CMakeFiles/spec_enumerate_test.dir/spec_enumerate_test.cc.o.d"
  "spec_enumerate_test"
  "spec_enumerate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_enumerate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
