# Empty dependencies file for spec_enumerate_test.
# This may be replaced when dependencies are built.
