file(REMOVE_RECURSE
  "CMakeFiles/bench_semaphore.dir/bench_semaphore.cc.o"
  "CMakeFiles/bench_semaphore.dir/bench_semaphore.cc.o.d"
  "bench_semaphore"
  "bench_semaphore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_semaphore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
