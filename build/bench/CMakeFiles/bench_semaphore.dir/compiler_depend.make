# Empty compiler generated dependencies file for bench_semaphore.
# This may be replaced when dependencies are built.
