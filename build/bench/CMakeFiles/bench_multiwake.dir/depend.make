# Empty dependencies file for bench_multiwake.
# This may be replaced when dependencies are built.
