file(REMOVE_RECURSE
  "CMakeFiles/bench_multiwake.dir/bench_multiwake.cc.o"
  "CMakeFiles/bench_multiwake.dir/bench_multiwake.cc.o.d"
  "bench_multiwake"
  "bench_multiwake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiwake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
