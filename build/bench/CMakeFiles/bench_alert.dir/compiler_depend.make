# Empty compiler generated dependencies file for bench_alert.
# This may be replaced when dependencies are built.
