file(REMOVE_RECURSE
  "CMakeFiles/bench_alert.dir/bench_alert.cc.o"
  "CMakeFiles/bench_alert.dir/bench_alert.cc.o.d"
  "bench_alert"
  "bench_alert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
