# Empty dependencies file for bench_firefly.
# This may be replaced when dependencies are built.
