file(REMOVE_RECURSE
  "CMakeFiles/bench_firefly.dir/bench_firefly.cc.o"
  "CMakeFiles/bench_firefly.dir/bench_firefly.cc.o.d"
  "bench_firefly"
  "bench_firefly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_firefly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
