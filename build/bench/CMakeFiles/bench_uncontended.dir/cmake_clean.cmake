file(REMOVE_RECURSE
  "CMakeFiles/bench_uncontended.dir/bench_uncontended.cc.o"
  "CMakeFiles/bench_uncontended.dir/bench_uncontended.cc.o.d"
  "bench_uncontended"
  "bench_uncontended.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_uncontended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
