# Empty dependencies file for bench_uncontended.
# This may be replaced when dependencies are built.
