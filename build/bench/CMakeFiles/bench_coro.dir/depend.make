# Empty dependencies file for bench_coro.
# This may be replaced when dependencies are built.
