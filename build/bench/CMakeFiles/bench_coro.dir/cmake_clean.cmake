file(REMOVE_RECURSE
  "CMakeFiles/bench_coro.dir/bench_coro.cc.o"
  "CMakeFiles/bench_coro.dir/bench_coro.cc.o.d"
  "bench_coro"
  "bench_coro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
