file(REMOVE_RECURSE
  "CMakeFiles/bench_rwlock.dir/bench_rwlock.cc.o"
  "CMakeFiles/bench_rwlock.dir/bench_rwlock.cc.o.d"
  "bench_rwlock"
  "bench_rwlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rwlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
