# Empty compiler generated dependencies file for bench_rwlock.
# This may be replaced when dependencies are built.
