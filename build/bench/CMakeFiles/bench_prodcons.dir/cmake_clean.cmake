file(REMOVE_RECURSE
  "CMakeFiles/bench_prodcons.dir/bench_prodcons.cc.o"
  "CMakeFiles/bench_prodcons.dir/bench_prodcons.cc.o.d"
  "bench_prodcons"
  "bench_prodcons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prodcons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
