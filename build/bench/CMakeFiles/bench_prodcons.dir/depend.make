# Empty dependencies file for bench_prodcons.
# This may be replaced when dependencies are built.
