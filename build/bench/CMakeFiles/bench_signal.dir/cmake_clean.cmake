file(REMOVE_RECURSE
  "CMakeFiles/bench_signal.dir/bench_signal.cc.o"
  "CMakeFiles/bench_signal.dir/bench_signal.cc.o.d"
  "bench_signal"
  "bench_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
