# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_readers_writers "/root/repo/build/examples/readers_writers")
set_tests_properties(example_readers_writers PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pipeline "/root/repo/build/examples/pipeline")
set_tests_properties(example_pipeline PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_alert_timeout "/root/repo/build/examples/alert_timeout")
set_tests_properties(example_alert_timeout PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_two_implementations "/root/repo/build/examples/two_implementations")
set_tests_properties(example_two_implementations PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_render_spec "/root/repo/build/examples/render_spec")
set_tests_properties(example_render_spec PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rpc_server "/root/repo/build/examples/rpc_server")
set_tests_properties(example_rpc_server PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spec_explorer "/root/repo/build/examples/spec_explorer")
set_tests_properties(example_spec_explorer PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
