# Empty dependencies file for two_implementations.
# This may be replaced when dependencies are built.
