file(REMOVE_RECURSE
  "CMakeFiles/two_implementations.dir/two_implementations.cpp.o"
  "CMakeFiles/two_implementations.dir/two_implementations.cpp.o.d"
  "two_implementations"
  "two_implementations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_implementations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
