# Empty dependencies file for spec_explorer.
# This may be replaced when dependencies are built.
