file(REMOVE_RECURSE
  "CMakeFiles/alert_timeout.dir/alert_timeout.cpp.o"
  "CMakeFiles/alert_timeout.dir/alert_timeout.cpp.o.d"
  "alert_timeout"
  "alert_timeout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alert_timeout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
