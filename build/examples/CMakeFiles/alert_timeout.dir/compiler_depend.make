# Empty compiler generated dependencies file for alert_timeout.
# This may be replaced when dependencies are built.
