# Empty dependencies file for readers_writers.
# This may be replaced when dependencies are built.
