file(REMOVE_RECURSE
  "CMakeFiles/render_spec.dir/render_spec.cpp.o"
  "CMakeFiles/render_spec.dir/render_spec.cpp.o.d"
  "render_spec"
  "render_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/render_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
