# Empty dependencies file for render_spec.
# This may be replaced when dependencies are built.
